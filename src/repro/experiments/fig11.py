"""Figure 11: predicting a new GPU (8x H100, batch 256).

Two prediction cases, both validated against measured 8x H100 runs:

* **Case 1 (cross-GPU)** — input traces collected on a *single A40* and a
  *single A100* at batch 128; TrioSim rescales them with Li's Model-style
  throughput ratios and extrapolates to 8x H100 at batch 256.
* **Case 2 (same-GPU)** — input trace collected on a single H100 at batch
  256.

Strategies: DDP, TP, and PP with 1 and 2 chunks.  CNNs only (the paper
excludes transformers: tracing them at batch 256 OOMs on real hardware).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    CNN_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict_many,
    trace_for,
)
from repro.gpus.specs import platform_p3
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model

TARGET_BATCH = 256
#: Case 1 source traces: (gpu, traced batch).
CASE1_SOURCES = (("A40", 128), ("A100", 128))


def _strategies(platform):
    return (
        ("ddp", SimulationConfig.for_platform(platform, parallelism="ddp",
                                              batch_size=TARGET_BATCH)),
        ("tp", SimulationConfig.for_platform(platform, parallelism="tp",
                                             batch_size=TARGET_BATCH)),
        ("pp-c1", SimulationConfig.for_platform(platform, parallelism="pp",
                                                chunks=1, batch_size=TARGET_BATCH)),
        ("pp-c2", SimulationConfig.for_platform(platform, parallelism="pp",
                                                chunks=2, batch_size=TARGET_BATCH)),
    )


def _measure(oracle: HardwareOracle, model, strategy: str, runs: int) -> float:
    if strategy == "ddp":
        return oracle.measure_ddp(model, TARGET_BATCH, runs=runs).total
    if strategy == "tp":
        return oracle.measure_tensor_parallel(model, TARGET_BATCH, runs=runs).total
    chunks = int(strategy.rsplit("c", 1)[1])
    return oracle.measure_pipeline(model, TARGET_BATCH, chunks, runs=runs).total


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 11."""
    models = models or (["resnet50", "densenet121", "vgg16"] if quick else CNN_SET)
    platform = platform_p3()
    oracle = HardwareOracle(platform)
    result = ExperimentResult(
        "fig11", "New-GPU prediction: 8x H100 at batch 256 (cases 1 and 2)"
    )
    strategies = _strategies(platform)
    configs = [config for _, config in strategies]
    for model_name in models:
        model = get_model(model_name)
        measured = {
            strategy: _measure(oracle, model, strategy, runs)
            for strategy, _ in strategies
        }
        # Each source trace sweeps all four strategies at once, so the
        # cross-GPU rescale to H100 happens once per trace, not per point.
        sources = [
            (f"case1-{src_gpu}", trace_for(model_name, src_gpu, src_batch))
            for src_gpu, src_batch in CASE1_SOURCES  # cross-GPU, batch 128
        ]
        sources.append(("case2", trace_for(model_name, "H100", TARGET_BATCH)))
        for case, trace in sources:
            for (strategy, _), predicted in zip(
                    strategies, predict_many(trace, configs)):
                result.add(Row(
                    label=f"{figure_label(model_name)}/{strategy}/{case}",
                    measured=measured[strategy],
                    predicted=predicted.total_time,
                ))
    summary = []
    for strategy in ("ddp", "tp", "pp-c1", "pp-c2"):
        case1 = result.mean_abs_error(f"/{strategy}/case1")
        case2 = result.mean_abs_error(f"/{strategy}/case2")
        summary.append(
            f"{strategy} case1 {case1 * 100:.2f}% / case2 {case2 * 100:.2f}%"
        )
    result.notes = (
        "avg |err| " + ", ".join(summary)
        + " (paper case1: 9.09/9.07/5.65/16.28%, case2: 6.69/9.09/4.20/13.76%)"
    )
    return result
