"""Figure 12: comparing parallelism strategies on P2.

Fixed *total* batch of 128 on 4x A100 GPUs; pipeline micro-batch 64 (2
chunks).  The claims to reproduce: (a) data parallelism is the most
efficient option at constant total work, (b) tensor parallelism generally
does not perform well except on transformers, and (c) TrioSim predicts the
relative ordering (in particular whether TP beats PP) for every model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    FULL_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict_many,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p2
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model

TOTAL_BATCH = 128
CHUNKS = 2  # micro-batch 64


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 12."""
    models = models or (QUICK_SET if quick else FULL_SET)
    platform = platform_p2()
    oracle = HardwareOracle(platform)
    result = ExperimentResult(
        "fig12", "Parallelism comparison on P2, total batch 128 on 4 GPUs"
    )
    ordering_correct = 0
    ordering_total = 0
    for model_name in models:
        model = get_model(model_name)
        traced = trace_batch(model_name)
        total_batch = min(TOTAL_BATCH, traced)  # Llama traces at 16
        per_gpu = total_batch // platform.num_gpus
        trace = trace_for(model_name, platform.gpu.name, traced)
        measured: Dict[str, float] = {}

        measured["dp"] = oracle.measure_ddp(model, per_gpu, runs=runs).total
        measured["tp"] = oracle.measure_tensor_parallel(
            model, total_batch, runs=runs).total
        measured["pp"] = oracle.measure_pipeline(
            model, total_batch, CHUNKS, runs=runs).total

        # One sweep over the three strategies, sharing the fitted models.
        configs = {
            "dp": SimulationConfig.for_platform(
                platform, parallelism="ddp", batch_size=per_gpu),
            "tp": SimulationConfig.for_platform(
                platform, parallelism="tp", batch_size=total_batch),
            "pp": SimulationConfig.for_platform(
                platform, parallelism="pp", chunks=CHUNKS,
                batch_size=total_batch),
        }
        results = predict_many(trace, list(configs.values()))
        predicted = {
            strategy: res.total_time
            for strategy, res in zip(configs, results)
        }

        for strategy in ("dp", "tp", "pp"):
            result.add(Row(
                label=f"{figure_label(model_name)}/{strategy}",
                measured=measured[strategy],
                predicted=predicted[strategy],
            ))
        # Does the simulator preserve the TP-vs-PP ordering?
        ordering_total += 1
        if (measured["tp"] < measured["pp"]) == (predicted["tp"] < predicted["pp"]):
            ordering_correct += 1
    result.notes = (
        f"TP-vs-PP ordering preserved for {ordering_correct}/{ordering_total} "
        "models (paper: all)"
    )
    return result
