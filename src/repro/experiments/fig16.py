"""Figure 16 (case study §7.2): Hop backup workers under heterogeneity.

8 A100 GPUs training VGG-11 at batch 128 with the Hop decentralized
protocol, on the ring-with-chords and double-ring communication graphs.
Heterogeneity: every GPU's communication bandwidth is slowed by a random
factor in [1, 10]; 8 random scenarios ("groups") are drawn.  The figure
reports the speedup of running with one backup worker versus none.

Claims to reproduce: the backup worker always helps (speedup >= 1), its
benefit varies significantly across slowdown scenarios, and the effect
holds on both graphs.  Simulation-only.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.harness import ExperimentResult, Row, trace_for
from repro.gpus.specs import platform_p2
from repro.hop.protocol import HopConfig, HopSimulation, random_slowdowns
from repro.network.topology import double_ring, ring_with_chords

NUM_WORKERS = 8
NUM_GROUPS = 8
ITERATIONS = 20
MODEL = "vgg11"
BATCH = 128

#: Decentralized workers gossip over a slower fabric than an NVLink board;
#: the Hop paper targets commodity clusters.  A 25 GB/s baseline makes the
#: communication phase comparable to VGG-11's compute, which is the regime
#: where backup workers matter.
BASELINE_BANDWIDTH = 25e9


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 1, seed: int = 100) -> ExperimentResult:
    """Reproduce Figure 16 (``models``/``runs`` accepted for symmetry)."""
    groups = 3 if quick else NUM_GROUPS
    trace = trace_for(MODEL, platform_p2().gpu.name, BATCH)
    compute_time = trace.total_duration
    update_bytes = trace.gradient_bytes
    graphs = {
        "ring": ring_with_chords(NUM_WORKERS, BASELINE_BANDWIDTH),
        "double-ring": double_ring(NUM_WORKERS, BASELINE_BANDWIDTH),
    }
    result = ExperimentResult(
        "fig16", "Hop: speedup of one backup worker under random slowdowns"
    )
    speedups = []
    for group in range(groups):
        slowdowns = random_slowdowns(NUM_WORKERS, seed=seed + group)
        for graph_name, graph in graphs.items():
            totals = {}
            for backup in (0, 1):
                config = HopConfig(
                    graph=graph,
                    compute_time=compute_time,
                    update_bytes=update_bytes,
                    bandwidth=BASELINE_BANDWIDTH,
                    slowdowns=slowdowns,
                    backup_workers=backup,
                    iterations=ITERATIONS,
                )
                totals[backup] = HopSimulation(config).run().total_time
            speedup = totals[0] / totals[1]
            speedups.append(speedup)
            result.add(Row(
                label=f"group{group + 1}/{graph_name}",
                measured=None,
                predicted=totals[1],
                detail={"no_backup": totals[0], "speedup": speedup},
            ))
    result.notes = (
        f"backup-worker speedups range {min(speedups):.3f}x to "
        f"{max(speedups):.3f}x across groups (paper: significant variation, "
        "always beneficial)"
    )
    return result
