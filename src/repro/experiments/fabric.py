"""Fabric figure: routing policy vs link failure on a leaf-spine Clos.

Not a paper artifact — the paper's platforms are single-path rings and
switches — but the headline question of the datacenter-fabric layer: on
an oversubscribed multi-path fabric, how much of a failed or degraded
uplink's damage can the routing policy absorb?  One DDP workload runs on
a leaf-spine fabric under every registered routing strategy, three ways:

* **healthy** — all links at nominal capacity;
* **degraded** — one leaf->spine uplink at a fraction of its capacity
  for the whole run (a flapping transceiver);
* **failed** — the same uplink at near-zero capacity (failure-like;
  routes never change, so traffic hashed onto it crawls unless the
  policy steers around it).

Deterministic ECMP cannot react — pairs hashed onto the sick spine stay
there, and the figure shows the whole collective dragging behind them.
Congestion-adaptive routing reads link utilization at flow start and
steers new flows away, holding time-to-train near the healthy baseline.
Flowlet routing lands between: each idle gap is a fresh chance to escape.
``detail`` carries the slowdown against the same strategy's healthy run
plus the per-link congestion metrics from ``SimulationResult.network``.

Everything is deterministic: the fault windows are explicit (no
sampling), and routing seeds are fixed — rerunning the figure reproduces
it bit for bit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import ExperimentResult, Row, predict, trace_for
from repro.faults.spec import FaultSpec, LinkFault
from repro.network.routing import routing_names
from repro.network.topology import TopologySpec

MODEL = "resnet50"
GPU = "A100"
NUM_GPUS = 16
GPUS_PER_LEAF = 4
SPINES = 2
#: Downlink:uplink ratio — oversubscribed so the spine tier is the
#: bottleneck and routing choices actually move the figure.
OVERSUBSCRIPTION = 4.0
#: Low enough that AllReduce is a visible share of the step.
LINK_BANDWIDTH = 12.5e9
ROUTING_SEED = 1

#: The uplink the fault hits (leaf0's first spine uplink).
FAULT_LINK = "leaf0-spine0"
#: Residual capacity fractions: a degraded uplink and a failure-like one.
SCENARIOS = (("healthy", None), ("degraded", 0.25), ("failed", 0.02))
#: Fault window comfortably covering the whole (stretched) run.
FAULT_HORIZON = 100.0


def _config(routing: str, factor: Optional[float],
            iterations: int) -> SimulationConfig:
    faults = None
    if factor is not None:
        faults = FaultSpec(link_faults=(
            LinkFault(FAULT_LINK, 0.0, FAULT_HORIZON, factor),
        ))
    return SimulationConfig(
        parallelism="ddp", num_gpus=NUM_GPUS,
        topology=TopologySpec("leaf_spine", {
            "gpus_per_leaf": GPUS_PER_LEAF, "spines": SPINES,
        }),
        oversubscription=OVERSUBSCRIPTION,
        link_bandwidth=LINK_BANDWIDTH,
        routing=routing, routing_seed=ROUTING_SEED,
        iterations=iterations, faults=faults,
    )


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 1) -> ExperimentResult:
    """ECMP vs flowlet vs adaptive routing under uplink degradation."""
    del models, runs  # single-workload figure; kept for CLI uniformity
    iterations = 1 if quick else 2
    result = ExperimentResult(
        "fabric",
        "Routing policy vs uplink failure on an oversubscribed "
        f"leaf-spine Clos (DDP, {NUM_GPUS}x{GPU}, {MODEL}, "
        f"{OVERSUBSCRIPTION:g}:1 oversubscription)",
        notes="value = time-to-train; slowdown vs the same strategy's "
              f"healthy run in detail; fault: {FAULT_LINK} capacity "
              "factor per scenario",
    )
    trace = trace_for(MODEL, GPU)
    for routing in routing_names():
        healthy_time = None
        for scenario, factor in SCENARIOS:
            predicted = predict(trace, _config(routing, factor, iterations))
            if scenario == "healthy":
                healthy_time = predicted.total_time
            network = predicted.network
            fault_link_key = FAULT_LINK.replace("-", "->")
            detail = {
                "slowdown": predicted.total_time / healthy_time,
                "max_peak_flows": float(network.get("max_peak_flows", 0)),
                "multipath_pairs": float(network.get("multipath_pairs", 0)),
                "fct_mean": float(network.get("fct", {}).get("mean", 0.0)),
                "fault_link_flows": float(
                    network.get("links", {})
                    .get(fault_link_key, {}).get("flows", 0)),
            }
            result.add(Row(
                label=f"{routing}/{scenario}", measured=None,
                predicted=predicted.total_time, detail=detail,
            ))
    return result
