"""Figure 7: standard (threaded) data parallelism on P1.

``torch.nn.DataParallel`` on 2x A40 over PCIe, per-GPU batch 128.  The
paper reports a 7.39% average error — the worst of the data-parallel
variants, because TrioSim does not model the GIL serialization that makes
threaded DataParallel slow.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    FULL_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p1
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 7."""
    models = models or (QUICK_SET if quick else FULL_SET)
    platform = platform_p1()
    oracle = HardwareOracle(platform)
    result = ExperimentResult(
        "fig07", "Standard data parallelism on P1 (2x A40, PCIe)"
    )
    for model_name in models:
        batch = trace_batch(model_name)
        measured = oracle.measure_data_parallel(get_model(model_name), batch, runs=runs)
        trace = trace_for(model_name, platform.gpu.name, batch)
        config = SimulationConfig.for_platform(platform, parallelism="dp")
        predicted = predict(trace, config)
        result.add(Row(
            label=figure_label(model_name),
            measured=measured.total,
            predicted=predicted.total_time,
        ))
    result.notes = (
        f"avg |err| {result.mean_abs_error() * 100:.2f}% (paper 7.39%)"
    )
    return result
