"""Figure 13: communication/computation breakdown on P1.

TrioSim's per-run output decomposes time into communication and
computation; the paper plots the ratio for tensor-parallel and DDP
training on P1.  The claim to reproduce: the communication share under
tensor parallelism is (much) higher than under distributed data
parallelism.  This is a simulator-output figure — no hardware baseline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    FULL_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict_many,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p1

STRATEGIES = ("tp", "ddp")


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 13 (``runs`` is accepted for API symmetry)."""
    models = models or (QUICK_SET if quick else FULL_SET)
    platform = platform_p1()
    result = ExperimentResult(
        "fig13", "Communication vs computation ratio on P1 (TP vs DDP)"
    )
    tp_higher = 0
    for model_name in models:
        trace = trace_for(model_name, platform.gpu.name, trace_batch(model_name))
        configs = [
            SimulationConfig.for_platform(platform, parallelism=strategy)
            for strategy in STRATEGIES
        ]
        ratios = {}
        for strategy, res in zip(STRATEGIES, predict_many(trace, configs)):
            ratios[strategy] = res.communication_ratio
            result.add(Row(
                label=f"{figure_label(model_name)}/{strategy}",
                measured=None,
                predicted=res.total_time,
                detail={
                    "comm_ratio": res.communication_ratio,
                    "compute": res.compute_time,
                    "comm": res.communication_time,
                },
            ))
        if ratios["tp"] > ratios["ddp"]:
            tp_higher += 1
    result.notes = (
        f"TP comm share exceeds DDP for {tp_higher}/{len(models)} models "
        "(paper: the communication time ratio in tensor parallel is higher "
        "than in data parallel on P1)"
    )
    return result
