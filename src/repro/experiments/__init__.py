"""Reproduction harness: one module per paper table/figure.

Each ``figNN`` module exposes ``run(...) -> ExperimentResult`` that
regenerates the corresponding evaluation artifact — same workloads, same
platforms, same rows/series — with the hardware oracle standing in for the
paper's physical testbeds (see DESIGN.md).  ``quick=True`` runs a
representative subset for fast CI; the defaults reproduce the full figure.
"""

from repro.experiments.harness import (
    ExperimentResult,
    Row,
    predict,
    predict_many,
    sweep_runner,
    trace_for,
)

__all__ = ["ExperimentResult", "Row", "predict", "predict_many",
           "sweep_runner", "trace_for"]
