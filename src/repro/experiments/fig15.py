"""Figure 15 (case study §7.1): photonic-connected wafer-scale GPUs.

A 12x7 = 84-GPU wafer (A100-equivalent chiplets), data-parallel training
with a fixed small per-GPU batch (strong scaling — the regime where the
paper observes communication dominating).  Two interconnects:

* **electrical** — a 2-D mesh of wafer-scale electrical links; the
  AllReduce ring embeds along a snake order with one long ring-closing
  path (the asymmetric slow link TrioSim's flow model handles natively);
* **photonic** — the Lightmatter Passage circuit-switching model: 484 GB/s
  per established circuit, 20 ms link setup, 8 ports per GPU.

Claims to reproduce: communication dominates on the electrical wafer
(~92% of VGG-19's time in the paper), the optical network cuts
communication substantially (paper: roughly half), and communication
remains significant even with photonics (scalability is not fully
solved).  Simulation-only — there is no 84-GPU wafer to measure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.engine.engine import Engine
from repro.experiments.harness import (
    ExperimentResult,
    Row,
    figure_label,
    predict_many,
    trace_batch,
    trace_for,
)
from repro.network.photonic import PhotonicNetwork
from repro.network.topology import gpu_names, wafer_mesh

ROWS, COLS = 12, 7
NUM_GPUS = ROWS * COLS
PER_GPU_BATCH = 2

#: Electrical wafer link: die-to-die signaling across reticle boundaries.
ELECTRICAL_BANDWIDTH = 100e9
ELECTRICAL_LATENCY = 20e-6

#: Passage circuit parameters (paper §7.1).
PHOTONIC_BANDWIDTH = 484e9
PHOTONIC_SETUP_LATENCY = 20e-3
PHOTONIC_PORTS = 8
PHOTONIC_LINK_LATENCY = 15e-6

DEFAULT_MODELS = ["resnet50", "densenet121", "vgg16", "vgg19",
                  "gpt2", "bert", "llama-3.2-1b"]


def _photonic_factory(engine: Engine, _config) -> PhotonicNetwork:
    return PhotonicNetwork(
        engine, gpu_names(NUM_GPUS),
        bandwidth=PHOTONIC_BANDWIDTH,
        setup_latency=PHOTONIC_SETUP_LATENCY,
        ports_per_node=PHOTONIC_PORTS,
        link_latency=PHOTONIC_LINK_LATENCY,
    )


def _config(network: str) -> SimulationConfig:
    common = dict(
        parallelism="ddp",
        num_gpus=NUM_GPUS,
        batch_size=PER_GPU_BATCH,
        gpu="A100",
        # One fused AllReduce after backward: the wafer case study models
        # plain data-parallel synchronization, not DDP bucketing.
        overlap=False,
    )
    if network == "electrical":
        return SimulationConfig(
            topology=wafer_mesh(ROWS, COLS, ELECTRICAL_BANDWIDTH,
                                ELECTRICAL_LATENCY),
            **common,
        )
    return SimulationConfig(network_factory=_photonic_factory, **common)


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 1) -> ExperimentResult:
    """Reproduce Figure 15 (``runs`` accepted for API symmetry)."""
    models = models or (["vgg19", "resnet50"] if quick else DEFAULT_MODELS)
    result = ExperimentResult(
        "fig15",
        "Wafer-scale 84-GPU data parallelism: electrical vs photonic",
    )
    comm_reduction = {}
    for model_name in models:
        trace = trace_for(model_name, "A100", trace_batch(model_name))
        comm = {}
        networks = ("electrical", "photonic")
        # One sweep per model; the photonic config carries a network
        # factory, which the sweep service runs in-process.
        responses = predict_many(trace, [_config(n) for n in networks])
        for network, res in zip(networks, responses):
            # Wall-clock view, like the paper's stacked bars: compute is
            # one GPU's busy time; communication is everything else.
            compute_wall = max(res.per_gpu_busy.values())
            comm_wall = max(res.total_time - compute_wall, 0.0)
            comm[network] = comm_wall
            result.add(Row(
                label=f"{figure_label(model_name)}/{network}",
                measured=None,
                predicted=res.total_time,
                detail={
                    "compute": compute_wall,
                    "comm": comm_wall,
                    "comm_ratio": comm_wall / res.total_time,
                },
            ))
        if comm["photonic"] > 0:
            comm_reduction[model_name] = comm["electrical"] / comm["photonic"]
    vgg_row = next((r for r in result.rows if r.label == "VGG-19/electrical"), None)
    vgg_share = vgg_row.detail["comm_ratio"] if vgg_row else float("nan")
    result.notes = (
        f"VGG-19 electrical comm share {vgg_share * 100:.1f}% (paper 92.21%); "
        "photonic comm reduction "
        + ", ".join(f"{m}: {x:.2f}x" for m, x in comm_reduction.items())
        + " (paper: nearly half)"
    )
    return result
