"""Shared infrastructure for the per-figure experiment modules.

Every figure prediction is dispatched through one shared
:class:`~repro.service.runner.SweepRunner`, so cross-GPU trace rescaling
and performance-model fits are computed once per ``(trace, target GPU)``
and reused across all points, and an optional on-disk cache makes
re-running any figure return its points instantly.  Environment knobs:

``REPRO_SWEEP_WORKERS``
    Worker processes for figure sweeps (default ``1`` = in-process).
``REPRO_CACHE_DIR``
    Result cache directory (default: caching off).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.service.runner import SweepRunner
from repro.trace.trace import Trace
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model, short_name
from repro.gpus.specs import get_gpu

#: The paper traces Llama at batch 16 "to avoid out-of-memory issues
#: during real-hardware tracing" (§6); everything else at 128.
DEFAULT_BATCH = 128
LLAMA_BATCH = 16

#: Figure workload sets (paper §5), with short subsets for quick runs.
CNN_SET = [
    "resnet18", "resnet34", "resnet50", "resnet101", "resnet152",
    "densenet121", "densenet161", "densenet169", "densenet201",
    "vgg11", "vgg13", "vgg16", "vgg19",
]
TRANSFORMER_SET = ["gpt2", "bert", "t5-small", "flan-t5-small", "llama-3.2-1b"]
FULL_SET = CNN_SET + TRANSFORMER_SET
QUICK_SET = ["resnet50", "densenet121", "vgg16", "gpt2"]

#: The paper's pipeline figures cover the models its PP libraries support.
PIPELINE_SET = [
    "resnet18", "resnet50", "resnet101", "resnet152",
    "densenet121", "densenet169", "densenet201",
    "gpt2", "bert", "llama-3.2-1b",
]


def trace_batch(model_name: str) -> int:
    """The batch size the paper traces each model at."""
    return LLAMA_BATCH if model_name.startswith("llama") else DEFAULT_BATCH


@lru_cache(maxsize=256)
def trace_for(model_name: str, gpu_name: str,
              batch: Optional[int] = None) -> Trace:
    """Collect (and cache) the single-GPU trace of one workload."""
    batch = batch or trace_batch(model_name)
    tracer = Tracer(get_gpu(gpu_name))
    return tracer.trace(get_model(model_name), batch)


_runner: Optional[SweepRunner] = None


def sweep_runner() -> SweepRunner:
    """The shared sweep service all figure predictions go through."""
    global _runner
    if _runner is None:
        _runner = SweepRunner(
            max_workers=int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
            cache=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _runner


def predict(trace: Trace, config: SimulationConfig,
            timeline: bool = False) -> SimulationResult:
    """One TrioSim prediction run (via the shared sweep service)."""
    return predict_many(trace, [config], timeline=timeline)[0]


def predict_many(trace: Trace, configs: Sequence[SimulationConfig],
                 timeline: bool = False) -> List[SimulationResult]:
    """Predict many configs against one trace in a single sweep.

    Points fan out over worker processes when ``REPRO_SWEEP_WORKERS`` asks
    for them and hit the result cache when ``REPRO_CACHE_DIR`` is set; a
    failed point re-raises its recorded error, preserving the exception
    behaviour of a direct :class:`TrioSim` run.
    """
    outcomes = sweep_runner().run(trace, configs, record_timeline=timeline)
    return [o.unwrap() for o in outcomes]


@dataclass
class Row:
    """One bar of a figure: a (configuration, measured, predicted) triple.

    ``measured`` may be ``None`` for simulation-only artifacts (the case
    studies have no hardware counterpart).
    """

    label: str
    measured: Optional[float]
    predicted: float
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def error(self) -> Optional[float]:
        """Signed relative error (predicted vs measured)."""
        if self.measured is None or self.measured == 0:
            return None
        return (self.predicted - self.measured) / self.measured

    @property
    def abs_error(self) -> Optional[float]:
        err = self.error
        return abs(err) if err is not None else None

    @property
    def normalized(self) -> Optional[float]:
        """predicted / measured — the paper's normalized-time y-axis."""
        if self.measured is None or self.measured == 0:
            return None
        return self.predicted / self.measured


@dataclass
class ExperimentResult:
    """All rows of one reproduced table/figure."""

    experiment_id: str
    title: str
    rows: List[Row] = field(default_factory=list)
    notes: str = ""

    def add(self, row: Row) -> Row:
        self.rows.append(row)
        return row

    def mean_abs_error(self, label_contains: str = "") -> float:
        """Mean |error| over rows whose label contains the filter string."""
        errs = [
            r.abs_error for r in self.rows
            if r.abs_error is not None and label_contains in r.label
        ]
        if not errs:
            raise ValueError(f"no measured rows match {label_contains!r}")
        return sum(errs) / len(errs)

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)

    def to_csv(self) -> str:
        """The figure's rows as CSV (label, measured, predicted, error)
        for downstream plotting."""
        lines = ["label,measured_s,predicted_s,error"]
        for r in self.rows:
            measured = f"{r.measured:.9f}" if r.measured is not None else ""
            error = f"{r.error:.6f}" if r.error is not None else ""
            lines.append(f"{r.label},{measured},{r.predicted:.9f},{error}")
        return "\n".join(lines)

    def table(self) -> str:
        """Render the figure's rows the way the paper reports them."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        width = max((len(r.label) for r in self.rows), default=10)
        for r in self.rows:
            if r.measured is not None:
                lines.append(
                    f"  {r.label:<{width}}  measured {r.measured * 1e3:9.2f} ms"
                    f"  predicted {r.predicted * 1e3:9.2f} ms"
                    f"  err {r.error * 100:+6.2f}%"
                )
            else:
                lines.append(
                    f"  {r.label:<{width}}  value {r.predicted * 1e3:9.2f} ms"
                )
        if self.notes:
            lines.append(f"  -- {self.notes}")
        return "\n".join(lines)


def figure_label(model_name: str, suffix: str = "") -> str:
    """Paper-style label for a model (RN-50, DN-121, ...)."""
    base = short_name(model_name)
    return f"{base}{suffix}" if suffix else base
