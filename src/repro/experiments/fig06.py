"""Figure 6: single-GPU batch-size extrapolation.

Predict batch-256 single-GPU iteration time from a batch-128 trace, on A40
and A100, and compare against the measured batch-256 run.  The paper
reports average errors of 1.10% (A40) and 3.25% (A100); CNNs only (larger
models run out of memory at batch 256 on real hardware).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    CNN_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict,
    trace_for,
)
from repro.gpus.specs import custom_platform
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model

TRACED_BATCH = 128
TARGET_BATCH = 256


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 6."""
    models = models or (QUICK_SET[:3] if quick else CNN_SET)
    result = ExperimentResult(
        "fig06",
        "Single-GPU prediction at batch 256 from a batch-128 trace",
    )
    for gpu_name in ("A40", "A100"):
        platform = custom_platform(gpu_name, 1, name=f"single-{gpu_name}")
        oracle = HardwareOracle(platform)
        for model_name in models:
            model = get_model(model_name)
            measured = oracle.measure_single_gpu(model, TARGET_BATCH, runs=runs)
            trace = trace_for(model_name, gpu_name, TRACED_BATCH)
            config = SimulationConfig(parallelism="single", batch_size=TARGET_BATCH)
            predicted = predict(trace, config)
            result.add(Row(
                label=f"{figure_label(model_name)}/{gpu_name}",
                measured=measured.total,
                predicted=predicted.total_time,
            ))
    result.notes = (
        f"avg |err| A40 {result.mean_abs_error('/A40') * 100:.2f}% "
        f"(paper 1.10%), A100 {result.mean_abs_error('/A100') * 100:.2f}% "
        "(paper 3.25%)"
    )
    return result
