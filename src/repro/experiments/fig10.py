"""Figure 10: pipeline parallelism (GPipe) on 2 and 4 A100 GPUs.

Micro-batch counts (chunks) of 1, 2, and 4 at mini-batch 128.  The paper
flags an anomaly (orange triangles): on layer-heavy models, 4 chunks can
be *slower* than 2 on real hardware because per-micro-batch CPU scheduling
overhead grows — an effect TrioSim deliberately does not model, so its
error is largest exactly there.  This module reports the anomaly rows the
same way.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    PIPELINE_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict_many,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p2
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model

CHUNK_COUNTS = (1, 2, 4)


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 10."""
    models = models or (["resnet50", "densenet169", "gpt2"] if quick
                        else PIPELINE_SET)
    result = ExperimentResult(
        "fig10", "Pipeline parallelism (GPipe) on 2 and 4 A100 GPUs"
    )
    anomalies = []
    for num_gpus in (2, 4):
        platform = platform_p2(num_gpus)
        oracle = HardwareOracle(platform)
        for model_name in models:
            batch = trace_batch(model_name)
            trace = trace_for(model_name, platform.gpu.name, batch)
            measured_by_chunks = {
                chunks: oracle.measure_pipeline(
                    get_model(model_name), batch, chunks,
                    num_stages=num_gpus, runs=runs,
                ).total
                for chunks in CHUNK_COUNTS
            }
            # The chunk axis is one sweep sharing the fitted perf model.
            configs = [
                SimulationConfig.for_platform(
                    platform, num_gpus=num_gpus, parallelism="pp",
                    chunks=chunks,
                )
                for chunks in CHUNK_COUNTS
            ]
            for chunks, predicted in zip(CHUNK_COUNTS,
                                         predict_many(trace, configs)):
                result.add(Row(
                    label=f"{figure_label(model_name)}/{num_gpus}gpu/c{chunks}",
                    measured=measured_by_chunks[chunks],
                    predicted=predicted.total_time,
                ))
            # The paper's orange-triangle rule: more chunks should be
            # faster; flag measured rows where they are not.
            for lo, hi in ((1, 2), (2, 4)):
                if measured_by_chunks[hi] > measured_by_chunks[lo]:
                    anomalies.append(
                        f"{figure_label(model_name)}/{num_gpus}gpu/c{hi}"
                    )
    per_chunk = {
        (g, c): result.mean_abs_error(f"/{g}gpu/c{c}")
        for g in (2, 4) for c in CHUNK_COUNTS
    }
    result.notes = (
        "avg |err| "
        + ", ".join(
            f"{g}gpu/c{c} {err * 100:.2f}%" for (g, c), err in per_chunk.items()
        )
        + f"; CPU-bound anomalies (paper's orange triangles): {anomalies or 'none'}"
        + " (paper 2gpu: 6.82/6.58/15.10%, 4gpu: 5.14/8.96/8.18%)"
    )
    return result
