"""Sensitivity analysis: does the reproduction depend on its knobs?

The hardware oracle stands in for physical testbeds, so its calibration
constants (measurement noise, clock derate, profiler inflation) could in
principle be doing the work of "reproducing" the paper's error bands.
This experiment sweeps the two purely stochastic knobs and re-measures the
DDP validation error:

* **noise sigma** — per-operator measurement noise of both the tracer and
  the oracle;
* **seed** — the deterministic noise streams themselves.

The claim to verify: the error stays within the paper's band across the
sweep — i.e. the validation result is driven by the *systematic*
differences between the detailed oracle and the lightweight simulator
(protocol costs, CPU effects, profiler bias), not by a lucky noise draw.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.experiments.harness import ExperimentResult, Row
from repro.gpus.specs import platform_p1
from repro.oracle.oracle import HardwareOracle
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

MODELS = ["resnet50", "densenet121", "vgg16", "gpt2"]
SIGMAS = (0.0, 0.006, 0.012, 0.024)
SEEDS = (7, 21, 99)
BATCH = 128


def _ddp_error(model_name: str, sigma: float, seed: int, runs: int) -> float:
    platform = platform_p1()
    model = get_model(model_name)
    oracle = HardwareOracle(platform, noise_sigma=sigma, seed=seed)
    measured = oracle.measure_ddp(model, BATCH, runs=runs).total
    trace = Tracer(platform.gpu, noise_sigma=sigma, seed=seed).trace(model, BATCH)
    config = SimulationConfig.for_platform(platform, parallelism="ddp")
    predicted = TrioSim(trace, config, record_timeline=False).run().total_time
    return (predicted - measured) / measured


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 5) -> ExperimentResult:
    """Sweep noise sigma and seed; report the DDP validation error."""
    models = models or (MODELS[:2] if quick else MODELS)
    result = ExperimentResult(
        "sensitivity",
        "Robustness of the DDP validation error to oracle noise and seed",
    )
    for sigma in SIGMAS:
        errs = [abs(_ddp_error(m, sigma, 7, runs)) for m in models]
        result.add(Row(
            label=f"sigma={sigma:g}",
            measured=None,
            predicted=sum(errs) / len(errs),
            detail={"max_err": max(errs)},
        ))
    for seed in SEEDS:
        errs = [abs(_ddp_error(m, 0.012, seed, runs)) for m in models]
        result.add(Row(
            label=f"seed={seed}",
            measured=None,
            predicted=sum(errs) / len(errs),
            detail={"max_err": max(errs)},
        ))
    worst = max(r.predicted for r in result.rows)
    result.notes = (
        f"worst mean |err| across the sweep: {worst * 100:.2f}% — the DDP "
        "validation band does not hinge on a particular noise draw"
    )
    return result
