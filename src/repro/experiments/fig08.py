"""Figure 8: distributed data parallelism on P1 and P2.

``DistributedDataParallel`` (bucketed AllReduce overlapping backward) on
2x A40/PCIe and 4x A100/NVLink, per-GPU batch 128.  Paper: 2.91% (P1) and
2.73% (P2) average error — the best-predicted strategy, since DDP matches
TrioSim's overlap-capable extrapolation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    FULL_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p1, platform_p2
from repro.oracle.oracle import HardwareOracle
from repro.workloads.registry import get_model


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 10) -> ExperimentResult:
    """Reproduce Figure 8."""
    models = models or (QUICK_SET if quick else FULL_SET)
    result = ExperimentResult(
        "fig08", "Distributed data parallelism on P1 (2x A40) and P2 (4x A100)"
    )
    for platform in (platform_p1(), platform_p2()):
        oracle = HardwareOracle(platform)
        for model_name in models:
            batch = trace_batch(model_name)
            measured = oracle.measure_ddp(get_model(model_name), batch, runs=runs)
            trace = trace_for(model_name, platform.gpu.name, batch)
            config = SimulationConfig.for_platform(platform, parallelism="ddp")
            predicted = predict(trace, config)
            result.add(Row(
                label=f"{figure_label(model_name)}/{platform.name}",
                measured=measured.total,
                predicted=predicted.total_time,
            ))
    result.notes = (
        f"avg |err| P1 {result.mean_abs_error('/P1') * 100:.2f}% (paper 2.91%), "
        f"P2 {result.mean_abs_error('/P2') * 100:.2f}% (paper 2.73%)"
    )
    return result
