"""Resilience figure: time-to-train under faults, DDP on ring vs switch.

Not a paper artifact — TrioSim models healthy clusters — but the natural
next axis at the scales the ROADMAP targets, where stragglers, flapping
links, and GPU failures dominate real time-to-train.  Two sweeps, each
run on a ring and on a switch topology:

* **MTBF axis** — fail-stop GPU failures at decreasing mean time between
  failures, protected by periodic checkpoint-restart.  Reported value is
  the faulted time-to-train; ``detail`` carries the slowdown over the
  fault-free baseline.
* **Straggler axis** — transient per-GPU slowdown windows of increasing
  severity.  A straggler under synchronous DDP drags every AllReduce it
  participates in, whatever the wiring.
* **Link-flap axis** — one topology link repeatedly degrades to a
  fraction of its capacity.  This is the axis where wiring could matter:
  a ring link versus a leaf uplink of a switch.

Fault schedules come from :meth:`FaultSpec.sample` with a fixed seed, so
the figure is deterministic run to run.  The horizon is taken from the
fault-free baseline of each topology (faults injected after the run
drains would be no-ops).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import ExperimentResult, Row, predict, trace_for
from repro.faults.spec import FaultSpec
from repro.network.topology import build_topology, link_names

MODEL = "resnet50"
GPU = "A100"
NUM_GPUS = 8
TOPOLOGIES = ("ring", "switch")
#: Low enough that AllReduce is a visible share of the step, so link
#: faults move the figure instead of hiding behind compute.
LINK_BANDWIDTH = 12.5e9
SEED = 7

#: MTBF as a fraction of the fault-free time-to-train (lower = harsher).
MTBF_FRACTIONS = (2.0, 0.5, 0.2)
#: Straggler slowdown factors (1 straggler window open ~half the run).
SEVERITIES = (1.5, 3.0, 6.0)
#: Residual capacity fractions for the flapping link.
FLAP_FACTORS = (0.5, 0.1)
#: Checkpoint policy, as fractions of the fault-free time-to-train.
CHECKPOINT_INTERVAL_FRACTION = 0.1
CHECKPOINT_COST_FRACTION = 0.01
RESTORE_COST_FRACTION = 0.02
#: Fault arrivals can land past the healthy finish time once stalls pile
#: up; sample over a stretched horizon so late reruns still see faults.
HORIZON_MARGIN = 4.0


def _config(topology: str, faults: Optional[FaultSpec] = None,
            iterations: int = 1) -> SimulationConfig:
    return SimulationConfig(
        parallelism="ddp", num_gpus=NUM_GPUS, topology=topology,
        link_bandwidth=LINK_BANDWIDTH, iterations=iterations, faults=faults,
    )


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 1) -> ExperimentResult:
    """Time-to-train vs MTBF and straggler severity, ring vs switch."""
    del models, runs  # single-workload figure; kept for CLI uniformity
    iterations = 2 if quick else 4
    result = ExperimentResult(
        "resilience",
        "Time-to-train under failures and stragglers (DDP, "
        f"{NUM_GPUS}x{GPU}, {MODEL})",
        notes="value = faulted time-to-train; slowdown vs the fault-free "
              "baseline in detail",
    )
    trace = trace_for(MODEL, GPU)
    for topology in TOPOLOGIES:
        baseline = predict(trace, _config(topology, iterations=iterations))
        base_time = baseline.total_time
        result.add(Row(
            label=f"{topology}/baseline", measured=None, predicted=base_time,
            detail={"slowdown": 1.0},
        ))
        horizon = base_time * HORIZON_MARGIN
        for fraction in MTBF_FRACTIONS:
            spec = FaultSpec.sample(
                seed=SEED, horizon=horizon, num_gpus=NUM_GPUS,
                mtbf=base_time * fraction,
                checkpoint_interval=base_time * CHECKPOINT_INTERVAL_FRACTION,
                checkpoint_cost=base_time * CHECKPOINT_COST_FRACTION,
                restore_cost=base_time * RESTORE_COST_FRACTION,
            )
            faulted = predict(
                trace, _config(topology, faults=spec, iterations=iterations))
            result.add(Row(
                label=f"{topology}/mtbf={fraction:g}x", measured=None,
                predicted=faulted.total_time,
                detail={"slowdown": faulted.total_time / base_time,
                        "failures": float(len(spec.failures))},
            ))
        for severity in SEVERITIES:
            spec = FaultSpec.sample(
                seed=SEED, horizon=horizon, num_gpus=NUM_GPUS,
                straggler_rate=2.0 / base_time,
                straggler_severity=severity,
                straggler_duration=base_time / 4.0,
            )
            faulted = predict(
                trace, _config(topology, faults=spec, iterations=iterations))
            result.add(Row(
                label=f"{topology}/straggler={severity:g}x", measured=None,
                predicted=faulted.total_time,
                detail={"slowdown": faulted.total_time / base_time,
                        "windows": float(len(spec.stragglers))},
            ))
        links = link_names(build_topology(topology, NUM_GPUS, LINK_BANDWIDTH))
        for factor in FLAP_FACTORS:
            spec = FaultSpec.sample(
                seed=SEED, horizon=horizon, num_gpus=NUM_GPUS,
                link_flap_rate=4.0 / base_time, link_flap_factor=factor,
                link_flap_duration=base_time / 8.0, links=links[:1],
            )
            faulted = predict(
                trace, _config(topology, faults=spec, iterations=iterations))
            result.add(Row(
                label=f"{topology}/flap={factor:g}x", measured=None,
                predicted=faulted.total_time,
                detail={"slowdown": faulted.total_time / base_time,
                        "link": 1.0, "flaps": float(len(spec.link_faults))},
            ))
    return result
