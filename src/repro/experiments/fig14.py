"""Figure 14: simulator execution time.

Wall-clock time TrioSim takes to simulate DDP on P2 for each workload
(plotted in log scale in the paper).  The claims to reproduce: simulations
complete within seconds, and the wall time tracks the trace size (operator
count) and GPU count.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.experiments.harness import (
    FULL_SET,
    QUICK_SET,
    ExperimentResult,
    Row,
    figure_label,
    predict,
    trace_batch,
    trace_for,
)
from repro.gpus.specs import platform_p2


def run(models: Optional[List[str]] = None, quick: bool = False,
        runs: int = 1) -> ExperimentResult:
    """Reproduce Figure 14 (wall time of the simulator itself)."""
    models = models or (QUICK_SET if quick else FULL_SET)
    platform = platform_p2()
    result = ExperimentResult(
        "fig14", "TrioSim wall-clock execution time, DDP on P2 (log scale)"
    )
    slowest = 0.0
    for model_name in models:
        trace = trace_for(model_name, platform.gpu.name, trace_batch(model_name))
        config = SimulationConfig.for_platform(platform, parallelism="ddp")
        best = None
        res = None
        for _ in range(max(runs, 1)):
            res = predict(trace, config)
            best = res.wall_time if best is None else min(best, res.wall_time)
        slowest = max(slowest, best)
        # ``predicted`` carries the wall time here (there is no hardware
        # counterpart to a simulator-speed figure).
        result.add(Row(
            label=figure_label(model_name),
            measured=None,
            predicted=best,
            detail={"events": float(res.events),
                    "operators": float(len(trace.operators))},
        ))
    result.notes = (
        f"slowest simulation {slowest:.2f} s wall — the paper's claim is "
        "'completed within seconds'"
    )
    return result
