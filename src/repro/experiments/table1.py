"""Table 1: comparison of TrioSim with similar performance-modeling tools.

The table is mostly qualitative (feature support); the quantitative row is
the claimed error, which this module re-derives from quick runs of the
validation experiments so the reproduced table reports *our* measured
numbers next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.experiments import fig08, fig09, fig10

#: The static feature rows of Table 1, verbatim from the paper.
FEATURES: Dict[str, Dict[str, str]] = {
    "Target Workload": {
        "Li's Model": "DNN inference",
        "AstraSim": "DNN training",
        "DistSim": "DNN training",
        "vTrain": "Transformer training",
        "TrioSim": "DNN training",
    },
    "Parallelism": {
        "Li's Model": "Not supported",
        "AstraSim": "DP, TP, PP",
        "DistSim": "DP, TP, PP, HP",
        "vTrain": "DP, TP, PP, HP",
        "TrioSim": "DP, TP, PP",
    },
    "Network": {
        "Li's Model": "Not supported",
        "AstraSim": "Symmetrical (e.g., ring, switch)",
        "DistSim": "Profile-based",
        "vTrain": "Profile-based",
        "TrioSim": "Flexible",
    },
    "Trace Requirement": {
        "Li's Model": "Single-GPU",
        "AstraSim": "Multi-GPU",
        "DistSim": "Multi-node",
        "vTrain": "Multi-node",
        "TrioSim": "Single-GPU",
    },
    "Performance Model": {
        "Li's Model": "Analytical",
        "AstraSim": "Mainly cycle-level simulation",
        "DistSim": "Analytical",
        "vTrain": "Analytical",
        "TrioSim": "Hybrid analytical & simulation",
    },
    "Support New GPU": {
        "Li's Model": "Yes",
        "AstraSim": "No",
        "DistSim": "No",
        "vTrain": "No",
        "TrioSim": "Supported using Li's Model",
    },
}

#: The paper's claimed-error row for TrioSim.
PAPER_CLAIMED_ERROR = {"DP": 0.0291, "TP": 0.0454, "PP": 0.0682}


@dataclass
class Table1Result:
    """The reproduced Table 1: features plus our measured error row."""

    features: Dict[str, Dict[str, str]]
    measured_error: Dict[str, float]
    paper_error: Dict[str, float] = field(default_factory=lambda: dict(PAPER_CLAIMED_ERROR))

    def table(self) -> str:
        lines = ["== table1: Comparison with similar tools =="]
        for feature, values in self.features.items():
            lines.append(f"  {feature}:")
            for tool, value in values.items():
                lines.append(f"    {tool:<12} {value}")
        lines.append("  Claimed Error (TrioSim):")
        for key, ours in self.measured_error.items():
            lines.append(
                f"    {key}: measured {ours * 100:.2f}% "
                f"(paper {self.paper_error[key] * 100:.2f}%)"
            )
        return "\n".join(lines)


def run(quick: bool = True, runs: int = 5) -> Table1Result:
    """Reproduce Table 1, re-deriving TrioSim's error row from quick runs
    of the DDP (P1), TP (P1), and PP (2-GPU, 1-chunk) validations."""
    ddp = fig08.run(quick=quick, runs=runs)
    tp = fig09.run(quick=quick, runs=runs)
    pp = fig10.run(quick=quick, runs=runs)
    measured = {
        "DP": ddp.mean_abs_error("/P1"),
        "TP": tp.mean_abs_error("/P1"),
        "PP": pp.mean_abs_error("/2gpu/c1"),
    }
    return Table1Result(features=FEATURES, measured_error=measured)
