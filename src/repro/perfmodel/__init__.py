"""Operator performance models.

:class:`~repro.perfmodel.li_model.LiModel` implements the paper's
linear-regression operator model (Li's Model, MICRO'23): per operator
class, execution time is regressed on FLOPs and bytes-moved features.
TrioSim uses it whenever the simulated operator differs from the traced
one — different batch size (data/pipeline parallelism), sharded tensors
(tensor parallelism), or a different GPU (cross-GPU prediction).
"""

from repro.perfmodel.base import AnchoredScalingMixin, OperatorPerformanceModel
from repro.perfmodel.features import op_features
from repro.perfmodel.piecewise import PiecewiseThroughputModel
from repro.perfmodel.li_model import LiModel
from repro.perfmodel.scaling import CrossGPUScaler

__all__ = [
    "AnchoredScalingMixin",
    "CrossGPUScaler",
    "LiModel",
    "OperatorPerformanceModel",
    "PiecewiseThroughputModel",
    "op_features",
]
