"""Piecewise-throughput operator model (the NeuSight-style alternative).

Where Li's Model fits one linear law per operator class, this model
learns a *throughput curve*: operators are bucketed by size, each bucket
gets its own effective throughput, and predictions interpolate between
buckets in log-size space.  Because throughput is allowed to fall at
small sizes, the model captures the under-utilization regime the linear
law cannot — the paper's stated reason for supporting alternative compute
models (§8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.oracle.gpu_model import MATMUL_KINDS
from repro.perfmodel.base import AnchoredScalingMixin
from repro.trace.trace import Trace

_EPS = 1e-12


@dataclass
class _Curve:
    """Monotone-interpolated throughput over log operator size."""

    log_sizes: np.ndarray       # bucket centers, log space
    throughputs: np.ndarray     # feature units per second

    def throughput(self, size: float) -> float:
        if size <= 0:
            return float(self.throughputs[0])
        return float(np.interp(
            np.log(size), self.log_sizes, self.throughputs,
            left=self.throughputs[0], right=self.throughputs[-1],
        ))


class PiecewiseThroughputModel(AnchoredScalingMixin):
    """Per-class piecewise throughput curves fitted from a trace.

    The size feature is FLOPs for matmul-class operators and bytes for
    everything else (memory-bound classes), matching how each class
    actually saturates a GPU.
    """

    #: Number of quantile buckets per class (fewer when data is scarce).
    BUCKETS = 6

    def __init__(self):
        self._curves: Dict[str, _Curve] = {}
        self._global: _Curve = None

    @staticmethod
    def _feature(kind: str, flops: float, nbytes: float) -> float:
        return flops if kind in MATMUL_KINDS else nbytes

    @classmethod
    def fit(cls, trace: Trace) -> "PiecewiseThroughputModel":
        model = cls()
        samples: Dict[str, List[Tuple[float, float]]] = {}
        everything: List[Tuple[float, float]] = []
        for op in trace.operators:
            feature = cls._feature(op.kind, op.flops, trace.op_bytes(op))
            if feature <= 0 or op.duration <= 0:
                continue
            samples.setdefault(op.kind, []).append((feature, op.duration))
            everything.append((feature, op.duration))
        if not everything:
            raise ValueError("trace has no usable operators")
        for kind, pairs in samples.items():
            model._curves[kind] = cls._fit_curve(pairs)
        model._global = cls._fit_curve(everything)
        return model

    @classmethod
    def _fit_curve(cls, pairs: List[Tuple[float, float]]) -> _Curve:
        pairs = sorted(pairs)
        features = np.array([f for f, _t in pairs])
        times = np.array([t for _f, t in pairs])
        buckets = min(cls.BUCKETS, len(pairs))
        edges = np.array_split(np.arange(len(pairs)), buckets)
        log_sizes = []
        throughputs = []
        for idx in edges:
            if len(idx) == 0:
                continue
            total_feature = features[idx].sum()
            total_time = times[idx].sum()
            log_sizes.append(np.log(max(features[idx].mean(), _EPS)))
            throughputs.append(total_feature / max(total_time, _EPS))
        return _Curve(np.array(log_sizes), np.array(throughputs))

    # ------------------------------------------------------------------
    # OperatorPerformanceModel API
    # ------------------------------------------------------------------
    @property
    def known_kinds(self) -> List[str]:
        return sorted(self._curves)

    def predict(self, kind: str, flops: float, nbytes: float) -> float:
        if self._global is None:
            raise RuntimeError("model is not fitted")
        feature = self._feature(kind, flops, nbytes)
        curve = self._curves.get(kind, self._global)
        if feature <= 0:
            return 0.0
        return feature / max(curve.throughput(feature), _EPS)
