"""Cross-GPU prediction: transfer a trace to a different GPU.

Li's Model supports "new GPUs" by rescaling operator times with the
throughput ratios of the source and target devices.  Each operator is
classified as compute- or memory-bound on the *source* GPU (by comparing
its roofline terms) and its time is scaled by the corresponding peak
ratio.  The result is a synthetic trace "as if collected" on the target
GPU, which the rest of TrioSim consumes unchanged — this is the paper's
Figure 11 Case 1 (A40/A100 traces predicting an H100 system).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpus.specs import GPUSpec, get_gpu
from repro.oracle.gpu_model import MATMUL_KINDS
from repro.trace.records import OperatorRecord
from repro.trace.trace import Trace


@dataclass(frozen=True)
class CrossGPUScaler:
    """Rescales traced operator times from ``source`` to ``target``."""

    source: GPUSpec
    target: GPUSpec

    @classmethod
    def between(cls, source_name: str, target_name: str) -> "CrossGPUScaler":
        return cls(get_gpu(source_name), get_gpu(target_name))

    #: Typical achieved fraction of peak memory bandwidth, used only to
    #: classify operators as compute- or memory-bound.
    _MEM_EFFICIENCY = 0.8

    def _peaks(self, kind: str, spec: GPUSpec) -> float:
        if kind in MATMUL_KINDS:
            return spec.matmul_flops * spec.max_efficiency
        return spec.vector_flops

    def op_scale(self, trace: Trace, op: OperatorRecord) -> float:
        """Multiplier applied to *op*'s duration on the target GPU.

        The operator is classified compute- or memory-bound on the
        *source* GPU using achievable (efficiency-derated) throughputs,
        then scaled by the corresponding source/target ratio.
        """
        nbytes = trace.op_bytes(op)
        src_peak = self._peaks(op.kind, self.source)
        math_time = op.flops / src_peak if src_peak > 0 else 0.0
        mem_time = nbytes / (self.source.mem_bandwidth * self._MEM_EFFICIENCY)
        if math_time >= mem_time:
            return src_peak / self._peaks(op.kind, self.target)
        return self.source.mem_bandwidth / self.target.mem_bandwidth

    def convert_trace(self, trace: Trace) -> Trace:
        """A copy of *trace* with durations rescaled to the target GPU."""
        converted = Trace(
            model_name=trace.model_name,
            gpu_name=self.target.name,
            batch_size=trace.batch_size,
            seq_len=trace.seq_len,
        )
        converted.tensors = dict(trace.tensors)
        for op in trace.operators:
            scale = self.op_scale(trace, op)
            converted.operators.append(
                OperatorRecord(
                    name=op.name,
                    kind=op.kind,
                    layer=op.layer,
                    phase=op.phase,
                    duration=op.duration * scale,
                    flops=op.flops,
                    inputs=op.inputs,
                    outputs=op.outputs,
                )
            )
        return converted
