"""Feature extraction for the regression performance model.

Each operator is summarized by the two quantities a roofline cares about:
floating-point work and bytes moved.  Both come straight from the trace —
FLOPs from the operator record, bytes from the tensor table — so the model
needs nothing beyond the paper's trace format.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import OperatorRecord
from repro.trace.trace import Trace

#: Feature vector length: (flops, bytes, intercept).
NUM_FEATURES = 3


def features(flops: float, nbytes: float) -> np.ndarray:
    """Feature vector for an operator with the given work and traffic."""
    if flops < 0 or nbytes < 0:
        raise ValueError("flops and nbytes must be non-negative")
    return np.array([flops, nbytes, 1.0])


def op_features(trace: Trace, op: OperatorRecord) -> np.ndarray:
    """Feature vector of a traced operator."""
    return features(op.flops, trace.op_bytes(op))


def scaled_op_features(trace: Trace, op: OperatorRecord,
                       flops_scale: float, bytes_scale: float) -> np.ndarray:
    """Features of a hypothetical operator derived from a traced one by
    scaling its work and traffic (batch-size change or tensor sharding)."""
    if flops_scale < 0 or bytes_scale < 0:
        raise ValueError("scales must be non-negative")
    return features(op.flops * flops_scale, trace.op_bytes(op) * bytes_scale)
