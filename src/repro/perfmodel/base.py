"""The operator-performance-model contract.

The paper (§8.2) notes that TrioSim "allows the integration of
alternative compute models, such as NeuSight" for workloads where the
linear model's high-utilization assumption fails.  Anything implementing
:class:`OperatorPerformanceModel` can be plugged into
:class:`~repro.extrapolator.optime.OpTimeModel` (and selected via
``SimulationConfig.perf_model``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.trace.records import OperatorRecord
from repro.trace.trace import Trace

_EPS = 1e-12


@runtime_checkable
class OperatorPerformanceModel(Protocol):
    """Predicts operator execution times from (class, FLOPs, bytes)."""

    def predict(self, kind: str, flops: float, nbytes: float) -> float:
        """Predicted execution time of one operator."""

    def predict_scaled(self, trace: Trace, op: OperatorRecord,
                       flops_scale: float, bytes_scale: float) -> float:
        """Traced time rescaled to new work/traffic (hybrid mode)."""


class AnchoredScalingMixin:
    """Shared hybrid-mode implementation: anchor to the traced time.

    Subclasses provide :meth:`predict`; this mixin derives
    :meth:`predict_scaled` as ``trace_time x predicted ratio``, preserving
    the paper's rule that unchanged parameters replay trace times
    verbatim.
    """

    def predict_scaled(self, trace: Trace, op: OperatorRecord,
                       flops_scale: float, bytes_scale: float) -> float:
        if flops_scale == 1.0 and bytes_scale == 1.0:
            return op.duration
        nbytes = trace.op_bytes(op)
        base = self.predict(op.kind, op.flops, nbytes)
        scaled = self.predict(op.kind, op.flops * flops_scale,
                              nbytes * bytes_scale)
        if base <= _EPS:
            return scaled
        return op.duration * scaled / base
