"""Li's Model: per-operator-class linear regression on (FLOPs, bytes).

The model fits, for every operator class present in a trace, a
non-negative linear law ``time = a*flops + b*bytes + c``.  Relative
weighting makes the fit minimize *relative* error, so small operators are
not drowned out by large ones.

TrioSim uses the model in hybrid form (paper §4.4): when an operator's
parameters change (batch size, shard), the new time is the *traced* time
scaled by the model's predicted ratio — anchoring to the measurement keeps
the prediction exact when nothing changes and smooth as parameters move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.perfmodel.features import NUM_FEATURES, features, op_features
from repro.trace.records import OperatorRecord
from repro.trace.trace import Trace

_EPS = 1e-12


def _nnls(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Non-negative least squares (scipy when available, else projected
    gradient fallback so the library has no hard scipy dependency)."""
    try:
        from scipy.optimize import nnls

        coef, _ = nnls(X, y)
        return coef
    except ImportError:  # pragma: no cover - exercised only without scipy
        coef = np.zeros(X.shape[1])
        step = 1.0 / (np.linalg.norm(X, ord=2) ** 2 + _EPS)
        for _ in range(2000):
            grad = X.T @ (X @ coef - y)
            coef = np.maximum(coef - step * grad, 0.0)
        return coef


@dataclass
class _ClassModel:
    """Fitted coefficients for one operator class."""

    coef: np.ndarray
    samples: int

    def predict(self, feats: np.ndarray) -> float:
        return float(self.coef @ feats)


class LiModel:
    """Regression-based operator execution-time model.

    Usage::

        model = LiModel.fit(trace)
        t = model.predict("conv", flops=2e9, nbytes=4e6)
        t2 = model.predict_scaled(trace, op, flops_scale=2.0, bytes_scale=2.0)
    """

    #: Minimum samples required to fit a full 3-coefficient law; smaller
    #: classes fall back to a pure-throughput model.
    MIN_SAMPLES = 4

    def __init__(self):
        self._classes: Dict[str, _ClassModel] = {}
        self._global: Optional[_ClassModel] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, trace: Trace) -> "LiModel":
        """Fit per-class regressions on all operators of *trace*."""
        model = cls()
        by_kind: Dict[str, list] = {}
        rows_all = []
        y_all = []
        for op in trace.operators:
            feats = op_features(trace, op)
            by_kind.setdefault(op.kind, []).append((feats, op.duration))
            rows_all.append(feats)
            y_all.append(op.duration)
        for kind, samples in by_kind.items():
            model._classes[kind] = cls._fit_class(samples)
        model._global = cls._fit_class(list(zip(rows_all, y_all)))
        return model

    @staticmethod
    def _fit_class(samples) -> _ClassModel:
        X = np.array([feats for feats, _dur in samples])
        y = np.array([dur for _feats, dur in samples])
        if len(samples) >= LiModel.MIN_SAMPLES and np.linalg.matrix_rank(X) >= 2:
            # Relative weighting: minimize sum((pred - y)^2 / y^2).
            w = 1.0 / np.maximum(y, _EPS)
            coef = _nnls(X * w[:, None], y * w)
            if coef @ X.mean(axis=0) > _EPS:
                return _ClassModel(coef, len(samples))
        # Throughput fallback: time proportional to the dominant feature.
        total_flops = float(X[:, 0].sum())
        total_bytes = float(X[:, 1].sum())
        total_time = float(y.sum())
        coef = np.zeros(NUM_FEATURES)
        if total_flops > 0:
            coef[0] = total_time / total_flops
        elif total_bytes > 0:
            coef[1] = total_time / total_bytes
        else:
            coef[2] = total_time / max(len(samples), 1)
        return _ClassModel(coef, len(samples))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    @property
    def known_kinds(self):
        return sorted(self._classes)

    def predict(self, kind: str, flops: float, nbytes: float) -> float:
        """Predicted execution time of an operator of class *kind*."""
        feats = features(flops, nbytes)
        cls_model = self._classes.get(kind, self._global)
        if cls_model is None:
            raise RuntimeError("model is not fitted")
        return max(cls_model.predict(feats), 0.0)

    def predict_scaled(self, trace: Trace, op: OperatorRecord,
                       flops_scale: float, bytes_scale: float) -> float:
        """Hybrid prediction: traced time scaled by the model's ratio.

        Returns ``op.duration`` untouched when both scales are 1 — the
        paper's rule that trace-provided times are used verbatim whenever
        simulation parameters match the trace.
        """
        if flops_scale == 1.0 and bytes_scale == 1.0:
            return op.duration
        nbytes = trace.op_bytes(op)
        base = self.predict(op.kind, op.flops, nbytes)
        scaled = self.predict(op.kind, op.flops * flops_scale, nbytes * bytes_scale)
        if base <= _EPS:
            # Degenerate fit; fall back to direct prediction.
            return scaled
        return op.duration * scaled / base
