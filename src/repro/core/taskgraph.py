"""Task-graph execution on the event engine.

The trace extrapolator expresses a multi-GPU execution as a DAG of tasks:

* **compute** tasks occupy one GPU's compute queue for a known duration
  (predicted by the performance model or taken from the trace);
* **transfer** tasks move bytes through the network model and take however
  long the network says (bandwidth sharing included);
* **barrier** tasks are zero-cost joins used to fan dependencies in/out.

Each GPU executes one compute task at a time, picking ready tasks in
creation order (the extrapolator creates tasks in program order, so this
reproduces the issue order of the framework being modelled).  Transfers
run concurrently with compute — which is exactly how communication/
computation overlap (DDP, GPipe) arises in the simulation, rather than
being an analytical correction.
"""

from __future__ import annotations

import inspect
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.engine import CallbackEvent, Engine
from repro.engine.hooks import HookCtx, Hookable
from repro.network.base import NetworkModel

HOOK_TASK_START = "task_start"
HOOK_TASK_END = "task_end"

#: Kind codes of the columnar (structure-of-arrays) scheduler.
SOA_COMPUTE, SOA_TRANSFER, SOA_BARRIER = 0, 1, 2


@dataclass
class SimTask:
    """One node of the execution DAG."""

    task_id: int
    name: str
    kind: str                       # "compute" | "transfer" | "barrier"
    gpu: Optional[str] = None       # compute tasks
    duration: float = 0.0           # compute tasks
    priority: int = 0               # lower runs first among ready tasks
    src: Optional[str] = None       # transfer tasks
    dst: Optional[str] = None
    nbytes: float = 0.0
    meta: dict = field(default_factory=dict)
    remaining_deps: int = 0
    dependents: List["SimTask"] = field(default_factory=list)
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.end_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimTask {self.name} ({self.kind})>"


class _GPUQueue:
    """FIFO compute queue of one GPU: one task in flight at a time.

    The object scheduler stores :class:`SimTask` entries; the columnar
    scheduler stores integer task ids.  Both use ``running is None`` as
    the idle test and accumulate ``busy_time`` identically.
    """

    def __init__(self):
        self.ready: list = []
        self.running = None
        self.busy_time = 0.0


class SoAGraph:
    """Columnar (structure-of-arrays) execution state for one run.

    Built by :meth:`repro.core.plan.ExtrapolationPlan.
    instantiate_iterations_soa` and installed with
    :meth:`TaskGraphSimulator.adopt_soa`.  Columns are indexed by *local*
    task id (global ``task_id`` is ``base + local id``); dependents are
    CSR (``indptr``/``indices``), dependency counts live in ``indegree``.
    The plan-level arrays are tiled with numpy and then materialized as
    plain lists: CPython list indexing beats per-element numpy access in
    the scalar dispatch loop, while construction stays vectorized.

    Inter-iteration fences are single rows: each terminal of instance
    *i* carries a ``fence_link`` to its fence, and the fence's
    ``release`` entry lists the next instance's root tasks — so a fence
    completing releases an iteration in O(roots) instead of walking
    every task of the instance the way the object scheduler's dependent
    lists do (the walk order is provably identical: non-root tasks hold
    within-instance dependencies and cannot start before a root chain
    reaches them).

    :class:`SimTask` views are materialized lazily — only when hooks
    need an object to observe — and mirror the columns' start/end
    times, so observers see exactly what the object scheduler shows.
    """

    __slots__ = ("base", "kind", "name", "gpu", "duration", "priority",
                 "src", "dst", "nbytes", "queue", "indegree", "indptr",
                 "indices", "fence_link", "release", "plan_row", "protos",
                 "entry_roots", "uniform_priority", "start", "end",
                 "views", "batched_send", "size")

    def __init__(self, base, kind, name, gpu, duration, priority, src,
                 dst, nbytes, queue, indegree, indptr, indices,
                 fence_link, release, plan_row, protos, entry_roots,
                 uniform_priority):
        self.base = base
        self.kind = kind
        self.name = name
        self.gpu = gpu
        self.duration = duration
        self.priority = priority
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.queue = queue
        self.indegree = indegree
        self.indptr = indptr
        self.indices = indices
        self.fence_link = fence_link
        self.release = release
        self.plan_row = plan_row
        self.protos = protos
        self.entry_roots = entry_roots
        self.uniform_priority = uniform_priority
        self.size = len(kind)
        self.start: list = [None] * self.size
        self.end: list = [None] * self.size
        self.views: list = [None] * self.size
        #: Whether the network's ``send`` accepts ``pending=`` (delivery
        #: events appended for one bulk submission per release wave).
        self.batched_send = False

    def view(self, tid: int) -> SimTask:
        """The lazily-materialized :class:`SimTask` view of *tid*."""
        task = self.views[tid]
        if task is None:
            # protos is a zero-arg callable (the plan's cached prototype
            # builder): hookless runs never materialize a view, so the
            # prototype table is only ever built on the first view.
            base, _deps, _gpu = self.protos()[self.plan_row[tid]]
            task = SimTask.__new__(SimTask)
            fields = dict(base)
            fields["task_id"] = self.base + tid
            fields["duration"] = self.duration[tid]
            fields["dependents"] = []
            fields["remaining_deps"] = 0
            fields["start_time"] = self.start[tid]
            fields["end_time"] = self.end[tid]
            task.__dict__ = fields
            self.views[tid] = task
        return task


class TaskGraphSimulator(Hookable):
    """Executes a task DAG over GPUs and a network model.

    Build the graph with :meth:`add_compute` / :meth:`add_transfer` /
    :meth:`add_barrier`, then call :meth:`run`.  Dependencies are given at
    creation time; a task becomes ready when all its dependencies finish.
    """

    def __init__(self, engine: Engine, network: NetworkModel):
        super().__init__()
        self.engine = engine
        self.network = network
        self.tasks: List[SimTask] = []
        self._gpus: Dict[str, _GPUQueue] = defaultdict(_GPUQueue)
        self._ids = itertools.count()
        self._unfinished = 0
        self._fence: Optional[SimTask] = None
        self.fences: List[SimTask] = []
        #: Per-GPU compute-duration multipliers (>= 1 slows a device) —
        #: heterogeneous/straggler systems without touching extrapolators.
        self.compute_scale: Dict[str, float] = {}
        #: Optional ``(gpu, now) -> multiplier`` consulted at dispatch time
        #: — transient stragglers whose factor depends on *when* a task
        #: runs, not just where.  ``None`` (the default) costs one check.
        self.runtime_compute_scale: Optional[Callable[[str, float], float]] = None
        self.comm_task_time = 0.0
        self.comm_bytes = 0.0
        self._soa: Optional[SoAGraph] = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _new_task(self, name: str, kind: str,
                  deps: Sequence[SimTask], **fields) -> SimTask:
        if self._soa is not None:
            raise RuntimeError(
                "this simulator executes a columnar (SoA) graph; object "
                "tasks cannot be added to it"
            )
        task = SimTask(next(self._ids), name, kind, **fields)
        live_deps = 0
        all_deps = list(deps)
        if self._fence is not None:
            all_deps.append(self._fence)
        for dep in all_deps:
            if dep.done:
                continue
            dep.dependents.append(task)
            live_deps += 1
        task.remaining_deps = live_deps
        self.tasks.append(task)
        self._unfinished += 1
        return task

    def fence(self, name: str = "fence") -> SimTask:
        """Insert a global synchronization point.

        The fence completes when every task created so far has finished,
        and every task created *afterwards* implicitly depends on it.
        This is how multi-iteration training is simulated: one
        extrapolated iteration per fence interval.
        """
        terminals = [t for t in self.tasks if not t.dependents and not t.done]
        return self.fence_from(name, terminals)

    def fence_from(self, name: str, terminals: Sequence[SimTask]) -> SimTask:
        """A :meth:`fence` whose wait-set is the given *terminals*.

        The plan-instancing path knows each instance's terminal tasks
        without scanning the whole graph, so inserting inter-iteration
        fences stays O(terminals) instead of O(tasks) — with identical
        semantics to :meth:`fence` (tasks created afterwards implicitly
        depend on the fence; an empty wait-set falls back to the previous
        fence so consecutive fences still order correctly).
        """
        terminals = [t for t in terminals if not t.done]
        previous_fence = self._fence
        self._fence = None  # the fence itself only depends on terminals
        fence = self.add_barrier(name, deps=terminals or
                                 ([previous_fence] if previous_fence else []))
        self._fence = fence
        self.fences.append(fence)
        return fence

    def add_compute(self, name: str, gpu: str, duration: float,
                    deps: Sequence[SimTask] = (), priority: int = 0,
                    **meta) -> SimTask:
        """A compute task of known *duration* pinned to *gpu* (scaled by
        the GPU's entry in :attr:`compute_scale`, if any).

        ``priority`` breaks ties among simultaneously-ready tasks on the
        same GPU (lower first, then creation order) — how schedule
        variants like 1F1B impose their issue order.
        """
        if duration < 0:
            raise ValueError(f"task {name}: negative duration")
        duration = float(duration) * self.compute_scale.get(gpu, 1.0)
        task = self._new_task(name, "compute", deps, gpu=gpu,
                              duration=duration, priority=priority, meta=meta)
        return task

    def add_transfer(self, name: str, src: str, dst: str, nbytes: float,
                     deps: Sequence[SimTask] = (), **meta) -> SimTask:
        """A network transfer of *nbytes* from *src* to *dst*."""
        if nbytes < 0:
            raise ValueError(f"task {name}: negative bytes")
        return self._new_task(name, "transfer", deps, src=src, dst=dst,
                              nbytes=float(nbytes), meta=meta)

    def add_barrier(self, name: str, deps: Sequence[SimTask] = (), **meta) -> SimTask:
        """A zero-cost join node."""
        return self._new_task(name, "barrier", deps, meta=meta)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> float:
        """Dispatch the DAG; returns the finish time of the last task."""
        if self._soa is not None:
            return self._run_soa()
        roots = [t for t in self.tasks if t.remaining_deps == 0 and not t.done]
        for task in roots:
            self._start(task)
        self.engine.run()
        if self._unfinished:
            stuck = [t.name for t in self.tasks if not t.done][:10]
            raise RuntimeError(
                f"{self._unfinished} tasks never became ready "
                f"(dependency cycle?); e.g. {stuck}"
            )
        return max((t.end_time for t in self.tasks), default=self.engine.now)

    def _start(self, task: SimTask) -> None:
        if task.kind == "compute":
            queue = self._gpus[task.gpu]
            queue.ready.append(task)
            self._maybe_dispatch(task.gpu)
        elif task.kind == "transfer":
            task.start_time = self.engine.now
            if self._hooks:
                self.invoke_hooks(
                    HookCtx(HOOK_TASK_START, self.engine.now, task))
            self.network.send(task.src, task.dst, task.nbytes,
                              lambda _t, tk=task: self._finish(tk), tag=task.name)
        else:  # barrier
            task.start_time = self.engine.now
            # Complete via a zero-delay event to avoid unbounded recursion
            # through long barrier chains.
            self.engine.call_after(0.0, lambda _ev, tk=task: self._finish(tk))

    def _maybe_dispatch(self, gpu: str) -> None:
        queue = self._gpus[gpu]
        if queue.running is not None or not queue.ready:
            return
        # Priority first, then creation order == program order.
        task = min(queue.ready, key=lambda t: (t.priority, t.task_id))
        queue.ready.remove(task)
        queue.running = task
        task.start_time = self.engine.now
        if self._hooks:
            self.invoke_hooks(HookCtx(HOOK_TASK_START, self.engine.now, task))
        duration = task.duration
        if self.runtime_compute_scale is not None:
            duration *= self.runtime_compute_scale(gpu, self.engine.now)
        self.engine.call_after(duration, lambda _ev, tk=task: self._finish(tk))

    def _finish(self, task: SimTask) -> None:
        task.end_time = self.engine.now
        self._unfinished -= 1
        if self._hooks:
            self.invoke_hooks(HookCtx(HOOK_TASK_END, self.engine.now, task))
        if task.kind == "compute":
            queue = self._gpus[task.gpu]
            queue.busy_time += task.end_time - (task.start_time or 0.0)
            queue.running = None
            self._maybe_dispatch(task.gpu)
        elif task.kind == "transfer":
            self.comm_task_time += task.end_time - (task.start_time or 0.0)
            self.comm_bytes += task.nbytes
        for dependent in task.dependents:
            dependent.remaining_deps -= 1
            if dependent.remaining_deps == 0:
                self._start(dependent)

    # ------------------------------------------------------------------
    # Columnar (SoA) execution
    # ------------------------------------------------------------------
    def adopt_soa(self, graph: SoAGraph) -> None:
        """Install a columnar task graph as this simulator's DAG.

        Exclusive with the object-graph builders: the simulator must
        hold no object tasks and no open fence, and ``add_*`` calls
        raise afterwards.  Dispatch decisions, hook firing positions,
        and accounting are bit-identical to the object scheduler — the
        differential engine benchmark pins the two paths' dispatch
        digests equal.
        """
        if self._soa is not None:
            raise RuntimeError("a columnar graph is already installed")
        if self.tasks or self._fence is not None:
            raise RuntimeError(
                "cannot install a columnar graph on a simulator that "
                "already holds object tasks"
            )
        try:
            graph.batched_send = (
                "pending" in inspect.signature(self.network.send).parameters)
        except (TypeError, ValueError):  # builtins / odd callables
            graph.batched_send = False
        self._soa = graph
        self._unfinished += graph.size

    def _run_soa(self) -> float:
        soa = self._soa
        assert soa is not None
        pending: list = []
        for tid in soa.entry_roots:
            self._start_soa(tid, pending)
        if pending:
            self.engine.schedule_bulk(pending)
        self.engine.run()
        if self._unfinished:
            end = soa.end
            stuck = [soa.name[t] for t in range(soa.size)
                     if end[t] is None][:10]
            raise RuntimeError(
                f"{self._unfinished} tasks never became ready "
                f"(dependency cycle?); e.g. {stuck}"
            )
        return max(soa.end) if soa.size else self.engine.now

    def _start_soa(self, tid: int, pending: list) -> None:
        soa = self._soa
        kind = soa.kind[tid]
        if kind == SOA_COMPUTE:
            queue = soa.queue[tid]
            queue.ready.append(tid)
            if queue.running is None:
                self._dispatch_soa(queue, pending)
        elif kind == SOA_TRANSFER:
            # engine._now read directly: the .now property costs a
            # descriptor call per event on this path.
            now = self.engine._now
            soa.start[tid] = now
            if self._hooks:
                view = soa.view(tid)
                view.start_time = now
                self.invoke_hooks(HookCtx(HOOK_TASK_START, now, view))
            if soa.batched_send:
                self.network.send(soa.src[tid], soa.dst[tid],
                                  soa.nbytes[tid],
                                  lambda _t, t=tid: self._finish_soa(t),
                                  tag=soa.name[tid], pending=pending)
            else:
                # Networks without batched delivery schedule directly;
                # flushing first keeps the event-creation order (and so
                # the seq order) identical to the object scheduler's
                # schedule-as-you-walk behaviour.
                if pending:
                    self.engine.schedule_bulk(pending)
                    del pending[:]
                self.network.send(soa.src[tid], soa.dst[tid],
                                  soa.nbytes[tid],
                                  lambda _t, t=tid: self._finish_soa(t),
                                  tag=soa.name[tid])
        else:  # barrier / fence
            now = self.engine._now
            soa.start[tid] = now
            pending.append(CallbackEvent(
                now + 0.0, lambda _ev, t=tid: self._finish_soa(t)))

    def _dispatch_soa(self, queue: _GPUQueue, pending: list) -> None:
        ready = queue.ready
        if not ready:
            return
        soa = self._soa
        if soa.uniform_priority:
            # min() over plain ints; ids ascend in creation order, so
            # this is the object scheduler's (priority, task_id) key.
            tid = min(ready)
        else:
            priority = soa.priority
            tid = min(ready, key=lambda t: (priority[t], t))
        ready.remove(tid)
        queue.running = tid
        now = self.engine._now
        soa.start[tid] = now
        if self._hooks:
            view = soa.view(tid)
            view.start_time = now
            self.invoke_hooks(HookCtx(HOOK_TASK_START, now, view))
        duration = soa.duration[tid]
        scale = self.runtime_compute_scale
        if scale is not None:
            duration *= scale(soa.gpu[tid], now)
        pending.append(CallbackEvent(
            now + duration, lambda _ev, t=tid: self._finish_soa(t)))

    def _finish_soa(self, tid: int) -> None:
        soa = self._soa
        now = self.engine._now
        soa.end[tid] = now
        self._unfinished -= 1
        if self._hooks:
            view = soa.view(tid)
            view.start_time = soa.start[tid]
            view.end_time = now
            self.invoke_hooks(HookCtx(HOOK_TASK_END, now, view))
        pending: list = []
        kind = soa.kind[tid]
        if kind == SOA_COMPUTE:
            queue = soa.queue[tid]
            queue.busy_time += now - soa.start[tid]
            queue.running = None
            self._dispatch_soa(queue, pending)
        elif kind == SOA_TRANSFER:
            self.comm_task_time += now - soa.start[tid]
            self.comm_bytes += soa.nbytes[tid]
        indptr = soa.indptr
        lo = indptr[tid]
        hi = indptr[tid + 1]
        if lo != hi:
            indices = soa.indices
            indegree = soa.indegree
            for k in range(lo, hi):
                rid = indices[k]
                left = indegree[rid] - 1
                indegree[rid] = left
                if not left:
                    self._start_soa(rid, pending)
        link = soa.fence_link[tid]
        if link >= 0:
            left = soa.indegree[link] - 1
            soa.indegree[link] = left
            if not left:
                self._start_soa(link, pending)
        else:
            release = soa.release[tid]
            if release is not None:
                fence = soa.views[tid]
                if fence is not None:
                    fence.end_time = now
                for rid in release:
                    self._start_soa(rid, pending)
        if pending:
            self.engine.schedule_bulk(pending)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def gpu_busy_time(self, gpu: str) -> float:
        return self._gpus[gpu].busy_time

    def add_busy_time(self, gpu: str, seconds: float) -> None:
        """Credit *seconds* of compute busy time to *gpu* without running
        a task — the iteration-folding counter extension (the folded tail
        dispatches no events but its compute time is known exactly)."""
        self._gpus[gpu].busy_time += seconds

    @property
    def unfinished_tasks(self) -> int:
        """Tasks not yet finished (drains to 0 as the run completes)."""
        return self._unfinished

    @property
    def gpus_seen(self) -> List[str]:
        return sorted(self._gpus)

    @property
    def compute_task_time(self) -> float:
        return sum(q.busy_time for q in self._gpus.values())
