"""The plan/execute split: cacheable extrapolation plans.

Extrapolating a single-GPU trace into a multi-GPU task DAG is pure graph
construction — it depends on the trace and the *parallelism* side of the
config (strategy, GPU count, batch scale, bucketing, schedules) but not on
the *scenario* side (topology, link parameters, faults, iteration count).
Sweeps, however, mostly vary the scenario side, and multi-iteration runs
re-extrapolate the identical iteration graph N times.

This module splits the pipeline accordingly:

* :class:`PlanBuilder` duck-types the graph-construction surface of
  :class:`~repro.core.taskgraph.TaskGraphSimulator`, so any extrapolator's
  :meth:`build` records into a plan instead of a live simulator;
* :class:`ExtrapolationPlan` is the recorded DAG — one iteration's tasks
  with dependency indices, content-keyed by :func:`plan_key`;
* :meth:`ExtrapolationPlan.instantiate` replays the plan into a live
  simulator (ID-offset structural clone plus fence wiring), bit-identical
  to running the extrapolator directly, at a fraction of the cost;
* :class:`PlanCache` is a bounded in-process LRU with optional
  content-addressed on-disk persistence, so sweep points that differ only
  in network/fault parameters — and repeat sweeps, and pool workers —
  share one extrapolation.

The plan key deliberately *excludes* network, topology, host-link, fault,
per-GPU-slowdown, and iteration parameters: those apply at execute time.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import time as _wall
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.taskgraph import SimTask, SoAGraph, TaskGraphSimulator
from repro.trace.trace import Trace, trace_digest

#: Bumped whenever the serialized plan format (or the meaning of a plan
#: key) changes; part of every key, so stale persisted plans are never
#: loaded across format changes.
PLAN_SCHEMA_VERSION = 1

#: Config fields a plan depends on.  Everything else — topology, link
#: bandwidth/latency, routing/routing_seed, oversubscription, host link
#: parameters, gpu_slowdowns, faults, iterations, the fold knobs
#: (fold/fold_warmup/fold_tolerance), network_factory — is an
#: execute-time concern and two configs differing only there share a
#: plan: the extrapolated task graph names logical transfers, and which
#: fabric path carries each one is decided when the network executes it.
PLAN_KEY_FIELDS = (
    "parallelism", "num_gpus", "batch_size", "chunks", "dp_degree",
    "tp_scheme", "pp_schedule", "bucket_bytes", "overlap",
    "collective_scheme", "gpus_per_node", "perf_model",
    "include_host_transfers",
)


class PlanKeyMismatch(ValueError):
    """A pre-built plan was executed under a config it was not built for."""


def plan_invariants(config: SimulationConfig) -> dict:
    """The plan-relevant (iteration-invariant) slice of *config*."""
    return {name: getattr(config, name) for name in PLAN_KEY_FIELDS}


def plan_key(trace: Trace, config: SimulationConfig) -> str:
    """Content key of the plan ``(trace, config)`` would build.

    *trace* must be the **prepared** trace (already cross-GPU rescaled) —
    the same object the extrapolator would consume.  Two (trace, config)
    pairs that extrapolate identically share a key.
    """
    canonical = json.dumps(
        {
            "plan_schema": PLAN_SCHEMA_VERSION,
            "trace": trace_digest(trace),
            "config": plan_invariants(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class PlannedTask:
    """One recorded task: the arguments of an ``add_*`` call plus the
    indices of its dependencies within the plan."""

    __slots__ = ("index", "kind", "name", "gpu", "duration", "priority",
                 "src", "dst", "nbytes", "meta", "deps")

    def __init__(self, index: int, kind: str, name: str,
                 gpu: Optional[str] = None, duration: float = 0.0,
                 priority: int = 0, src: Optional[str] = None,
                 dst: Optional[str] = None, nbytes: float = 0.0,
                 meta: Optional[dict] = None,
                 deps: Tuple[int, ...] = ()):
        self.index = index
        self.kind = kind
        self.name = name
        self.gpu = gpu
        self.duration = duration
        self.priority = priority
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.meta = meta or {}
        self.deps = deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlannedTask #{self.index} {self.name} ({self.kind})>"


class PlanBuilder:
    """Records an extrapolator's graph-construction calls into a plan.

    Exposes the same ``add_compute`` / ``add_transfer`` / ``add_barrier``
    surface as :class:`~repro.core.taskgraph.TaskGraphSimulator` (each
    returning the recorded :class:`PlannedTask`, usable as a dependency),
    but schedules nothing: compute durations are stored *unscaled* (the
    per-GPU ``compute_scale`` applies at instantiation), and fences are
    an execute-time concern (:meth:`fence` raises).
    """

    def __init__(self):
        self.tasks: List[PlannedTask] = []

    def _record(self, kind: str, name: str, deps: Sequence[PlannedTask],
                **fields) -> PlannedTask:
        task = PlannedTask(
            len(self.tasks), kind, name,
            deps=tuple(dep.index for dep in deps), **fields,
        )
        self.tasks.append(task)
        return task

    def add_compute(self, name: str, gpu: str, duration: float,
                    deps: Sequence[PlannedTask] = (), priority: int = 0,
                    **meta) -> PlannedTask:
        if duration < 0:
            raise ValueError(f"task {name}: negative duration")
        return self._record("compute", name, deps, gpu=gpu,
                            duration=float(duration), priority=priority,
                            meta=meta)

    def add_transfer(self, name: str, src: str, dst: str, nbytes: float,
                     deps: Sequence[PlannedTask] = (), **meta) -> PlannedTask:
        if nbytes < 0:
            raise ValueError(f"task {name}: negative bytes")
        return self._record("transfer", name, deps, src=src, dst=dst,
                            nbytes=float(nbytes), meta=meta)

    def add_barrier(self, name: str, deps: Sequence[PlannedTask] = (),
                    **meta) -> PlannedTask:
        return self._record("barrier", name, deps, meta=meta)

    def fence(self, name: str = "fence") -> PlannedTask:
        raise RuntimeError(
            "plans capture one iteration; fences are inserted at "
            "instantiation time (extrapolators must not call fence)"
        )

    def finish(self, key: str, build_wall: float = 0.0) -> "ExtrapolationPlan":
        return ExtrapolationPlan(self.tasks, key, build_wall=build_wall)


class ExtrapolationPlan:
    """One extrapolated iteration, decoupled from any engine or network.

    Parameters
    ----------
    tasks:
        The recorded tasks, dependency indices pointing backwards.
    key:
        The :func:`plan_key` this plan was built under.
    build_wall:
        Wall seconds the recording build took (profiler bookkeeping).
    """

    def __init__(self, tasks: Sequence[PlannedTask], key: str,
                 build_wall: float = 0.0):
        self.tasks: Tuple[PlannedTask, ...] = tuple(tasks)
        self.key = key
        self.build_wall = build_wall
        self._protos: Optional[list] = None
        self._soa_template: Optional[dict] = None
        has_dependents = [False] * len(self.tasks)
        for task in self.tasks:
            for dep in task.deps:
                has_dependents[dep] = True
        #: Indices of tasks with no dependents within the plan — what an
        #: inter-iteration fence must wait on, in creation order.
        self.terminal_ids: Tuple[int, ...] = tuple(
            i for i, used in enumerate(has_dependents) if not used
        )

    def __len__(self) -> int:
        return len(self.tasks)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _prototypes(self) -> list:
        """Per-task ``SimTask.__dict__`` templates, computed once per plan.

        Instancing is the hot loop of a cached sweep (every point and
        every iteration replays it), so the field layout is prepared here
        and each instance is stamped out by a dict copy instead of a
        dataclass constructor call.  ``meta`` dicts are shared between
        instances — nothing mutates task metadata after creation.
        """
        protos = self._protos
        if protos is None:
            protos = []
            for pt in self.tasks:
                base = {
                    "task_id": -1,
                    "name": pt.name,
                    "kind": pt.kind,
                    "gpu": pt.gpu,
                    "duration": pt.duration,
                    "priority": pt.priority,
                    "src": pt.src,
                    "dst": pt.dst,
                    "nbytes": pt.nbytes,
                    "meta": pt.meta,
                    "remaining_deps": len(pt.deps),
                    "dependents": None,
                    "start_time": None,
                    "end_time": None,
                }
                gpu = pt.gpu if pt.kind == "compute" else None
                protos.append((base, pt.deps, gpu))
            self._protos = protos
        return protos

    def instantiate(self, sim: TaskGraphSimulator) -> List[SimTask]:
        """Replay the plan into *sim*; returns the created tasks.

        Semantically identical to the extrapolator's ``build(sim)``: task
        IDs continue *sim*'s counter, per-GPU ``compute_scale`` applies to
        compute durations, and an open fence becomes an implicit
        dependency of every created task — so a cold build and an
        instanced plan produce bit-identical simulations.
        """
        ids = sim._ids
        scale = sim.compute_scale
        fence = sim._fence
        fence_dependents = fence.dependents if fence is not None else None
        created: List[SimTask] = []
        append_created = created.append
        new = SimTask.__new__
        cls = SimTask
        for base, deps, gpu in self._prototypes():
            task = new(cls)
            fields = dict(base)
            task.__dict__ = fields
            fields["task_id"] = next(ids)
            fields["dependents"] = []
            if gpu is not None and scale:
                # x * 1.0 is bit-identical to x, so the empty-scale fast
                # path matches the extrapolator's unconditional multiply.
                fields["duration"] = base["duration"] * scale.get(gpu, 1.0)
            if fence_dependents is not None:
                fields["remaining_deps"] += 1
                fence_dependents.append(task)
            for dep in deps:
                created[dep].dependents.append(task)
            append_created(task)
        sim.tasks.extend(created)
        sim._unfinished += len(created)
        return created

    def terminals(self, created: Sequence[SimTask]) -> List[SimTask]:
        """The fence dependencies of one instance: its terminal tasks."""
        return [created[i] for i in self.terminal_ids]

    def instantiate_iterations(self, sim: TaskGraphSimulator, count: int,
                               start: int = 0) -> List[SimTask]:
        """Instance *count* consecutive training iterations into *sim*.

        The single multi-iteration construction loop shared by the
        unfolded path, the folded path's warm-up, and the not-steady
        fallback: every iteration numbered ``>= 1`` is preceded by an
        inter-iteration fence named ``iteration{i}`` (numbering continues
        from *start*, so a continuation span keeps the fence names the
        all-upfront build would have used).  When a span opens on an
        already-drained graph the fence's terminals are all done and
        :meth:`TaskGraphSimulator.fence_from` falls back to the previous
        fence — the continuation then replays the schedule the all-
        upfront build would have produced, at the same virtual times.

        Returns the last instance's created tasks (the terminals feed of
        a follow-up fence).
        """
        created: Optional[List[SimTask]] = None
        for index in range(start, start + count):
            if index > 0:
                terminals = self.terminals(created) if created else []
                sim.fence_from(f"iteration{index}", terminals)
            created = self.instantiate(sim)
        return created if created is not None else []

    # ------------------------------------------------------------------
    # Columnar (structure-of-arrays) instancing
    # ------------------------------------------------------------------
    def soa_template(self) -> dict:
        """Plan-level columns and CSR dependents, computed once per plan.

        The dependents CSR row of task *d* lists its dependent indices in
        ascending order — exactly the order :meth:`instantiate` appends
        them to ``SimTask.dependents`` — so the columnar scheduler's
        release walk is the object scheduler's walk, element for element.
        """
        tpl = self._soa_template
        if tpl is None:
            tasks = self.tasks
            n = len(tasks)
            codes = {"compute": 0, "transfer": 1, "barrier": 2}
            indeg = [len(t.deps) for t in tasks]
            deg = [0] * n
            edges = 0
            for t in tasks:
                for d in t.deps:
                    deg[d] += 1
                edges += len(t.deps)
            indptr = [0] * (n + 1)
            running = 0
            for i, d in enumerate(deg):
                running += d
                indptr[i + 1] = running
            indices = [0] * edges
            fill = indptr[:-1].copy()
            for j, t in enumerate(tasks):
                for d in t.deps:
                    indices[fill[d]] = j
                    fill[d] += 1
            tpl = {
                "kind": [codes[t.kind] for t in tasks],
                "name": [t.name for t in tasks],
                "gpu": [t.gpu if t.kind == "compute" else None
                        for t in tasks],
                "duration": [t.duration for t in tasks],
                "priority": [t.priority for t in tasks],
                "src": [t.src for t in tasks],
                "dst": [t.dst for t in tasks],
                "nbytes": [t.nbytes for t in tasks],
                "indeg": indeg,
                "deg_np": np.asarray(deg, dtype=np.int64),
                "indices_np": np.asarray(indices, dtype=np.int64),
                "roots": [i for i, d in enumerate(indeg) if d == 0],
                "uniform_priority": len({t.priority for t in tasks}) <= 1,
            }
            self._soa_template = tpl
        return tpl

    def instantiate_iterations_soa(self, sim: TaskGraphSimulator,
                                   count: int) -> SoAGraph:
        """Instance *count* iterations as one columnar (SoA) graph.

        The structure-of-arrays counterpart of
        :meth:`instantiate_iterations`: instead of stamping out
        :class:`SimTask` objects and wiring dependent lists, the plan's
        CSR template is tiled across instances (numpy shift-and-concat)
        and executed by :class:`repro.core.taskgraph.SoAGraph` — with
        bit-identical dispatch.  Inter-iteration fences become single
        rows whose ``release`` lists hold the next instance's roots; the
        per-task implicit fence dependency the object path wires is
        redundant there (non-root tasks also wait on within-instance
        dependencies that cannot resolve before the fence) and is
        elided.  Task ids advance *sim*'s counter exactly as the object
        path would, so views carry the same ``task_id`` values.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        tpl = self.soa_template()
        n = len(self.tasks)
        if n and not self.terminal_ids:
            raise RuntimeError("plan has tasks but no terminals")
        block = n + 1
        total = count * block - 1
        base = next(sim._ids)
        sim._ids = itertools.count(base + total)
        scale = sim.compute_scale
        durations = tpl["duration"]
        if scale:
            # x * 1.0 is bit-identical to x: matches the object path's
            # conditional multiply (compute tasks only).
            durations = [d * scale.get(g, 1.0) if g is not None else d
                         for d, g in zip(durations, tpl["gpu"])]
        queues = [sim._gpus[g] if g is not None else None
                  for g in tpl["gpu"]]
        terminal_ids = self.terminal_ids
        roots = tpl["roots"]
        plan_deg = tpl["deg_np"]
        plan_indices = tpl["indices_np"]
        zero1 = np.zeros(1, dtype=np.int64)
        row_t = list(range(n))
        none_row: list = [None] * n
        neg_row = [-1] * n
        kind: list = []
        name: list = []
        gpu: list = []
        dur: list = []
        prio: list = []
        src: list = []
        dst: list = []
        nb: list = []
        queue: list = []
        indegree: list = []
        plan_row: list = []
        release: list = []
        fence_link: list = []
        idx_blocks = []
        deg_blocks = []
        for i in range(count):
            off = i * block
            kind.extend(tpl["kind"])
            name.extend(tpl["name"])
            gpu.extend(tpl["gpu"])
            dur.extend(durations)
            prio.extend(tpl["priority"])
            src.extend(tpl["src"])
            dst.extend(tpl["dst"])
            nb.extend(tpl["nbytes"])
            queue.extend(queues)
            indegree.extend(tpl["indeg"])
            plan_row.extend(row_t)
            release.extend(none_row)
            idx_blocks.append(plan_indices + off)
            deg_blocks.append(plan_deg)
            if i < count - 1:
                fence_tid = off + n
                link = neg_row.copy()
                for t in terminal_ids:
                    link[t] = fence_tid
                fence_link.extend(link)
                kind.append(2)
                name.append(f"iteration{i + 1}")
                gpu.append(None)
                dur.append(0.0)
                prio.append(0)
                src.append(None)
                dst.append(None)
                nb.append(0.0)
                queue.append(None)
                indegree.append(len(terminal_ids))
                plan_row.append(-1)
                next_off = off + block
                release.append([next_off + r for r in roots])
                fence_link.append(-1)
                idx_blocks.append(zero1[:0])
                deg_blocks.append(zero1)
            else:
                fence_link.extend(neg_row)
        degrees = np.concatenate(deg_blocks) if deg_blocks else zero1[:0]
        indices_np = (np.concatenate(idx_blocks) if idx_blocks
                      else zero1[:0])
        indptr_np = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr_np[1:])
        graph = SoAGraph(
            base=base, kind=kind, name=name, gpu=gpu, duration=dur,
            priority=prio, src=src, dst=dst, nbytes=nb, queue=queue,
            indegree=indegree, indptr=indptr_np.tolist(),
            indices=indices_np.tolist(), fence_link=fence_link,
            release=release, plan_row=plan_row,
            protos=self._prototypes, entry_roots=list(roots),
            uniform_priority=tpl["uniform_priority"],
        )
        sim.adopt_soa(graph)
        for i in range(1, count):
            fence_tid = i * block - 1
            fence = SimTask(base + fence_tid, f"iteration{i}", "barrier")
            graph.views[fence_tid] = fence
            sim.fences.append(fence)
        return graph

    # ------------------------------------------------------------------
    # Serialization (the on-disk persistence format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        rows = []
        for t in self.tasks:
            if t.kind == "compute":
                rows.append(["c", t.name, t.gpu, t.duration, t.priority,
                             t.meta, list(t.deps)])
            elif t.kind == "transfer":
                rows.append(["t", t.name, t.src, t.dst, t.nbytes,
                             t.meta, list(t.deps)])
            else:
                rows.append(["b", t.name, t.meta, list(t.deps)])
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "key": self.key,
            "tasks": rows,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExtrapolationPlan":
        version = data.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise ValueError(f"unsupported plan schema version {version}")
        tasks = []
        for index, row in enumerate(data["tasks"]):
            tag = row[0]
            if tag == "c":
                _, name, gpu, duration, priority, meta, deps = row
                tasks.append(PlannedTask(index, "compute", name, gpu=gpu,
                                         duration=duration,
                                         priority=priority, meta=meta,
                                         deps=tuple(deps)))
            elif tag == "t":
                _, name, src, dst, nbytes, meta, deps = row
                tasks.append(PlannedTask(index, "transfer", name, src=src,
                                         dst=dst, nbytes=nbytes, meta=meta,
                                         deps=tuple(deps)))
            elif tag == "b":
                _, name, meta, deps = row
                tasks.append(PlannedTask(index, "barrier", name, meta=meta,
                                         deps=tuple(deps)))
            else:
                raise ValueError(f"unknown plan row tag {tag!r}")
            for dep in tasks[-1].deps:
                # Dependencies must point strictly backwards: a forward,
                # self, or out-of-range reference would corrupt the
                # dependent wiring at instantiation.  Raising ValueError
                # here puts corrupt persisted plans on PlanCache.get's
                # drop-and-rebuild path instead of into a simulation.
                if not isinstance(dep, int) or not 0 <= dep < index:
                    raise ValueError(
                        f"plan row {index} ({tasks[-1].name!r}) has an "
                        f"invalid dependency index {dep!r}: dependencies "
                        "must reference earlier rows"
                    )
        return cls(tasks, data["key"])

    def to_json(self) -> str:
        """Serialize to JSON (floats round-trip bit-exactly)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExtrapolationPlan":
        return cls.from_dict(json.loads(text))


class PlanCache:
    """Bounded LRU of :class:`ExtrapolationPlan` entries, optionally
    persisted to a content-addressed directory.

    Parameters
    ----------
    root:
        Optional directory for on-disk persistence (created on first
        store).  With a root, plans survive process boundaries: pool
        workers and repeat sweeps load instead of re-extrapolating.
    max_entries:
        In-memory LRU bound; plans are large (one entry per task), so the
        default stays small.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root) if root is not None else None
        self.max_entries = max_entries
        self._mem: "OrderedDict[str, ExtrapolationPlan]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.builds = 0

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.plan.json"

    def get(self, key: str) -> Optional[ExtrapolationPlan]:
        """The cached plan for *key* from memory then disk, or ``None``."""
        plan = self._mem.get(key)
        if plan is not None:
            self._mem.move_to_end(key)
            self.memory_hits += 1
            return plan
        if self.root is not None:
            try:
                text = self._path(key).read_text()
            except OSError:
                return None
            try:
                plan = ExtrapolationPlan.from_json(text)
            except (ValueError, KeyError, IndexError):
                # Corrupt or stale-schema entry: drop it, treat as a miss.
                try:
                    self._path(key).unlink()
                except OSError:
                    pass
                return None
            if plan.key != key:
                return None  # content/key mismatch: never trust it
            self.disk_hits += 1
            self._remember(key, plan)
            return plan
        return None

    def put(self, key: str, plan: ExtrapolationPlan) -> None:
        """Cache *plan* under *key* in memory and (if rooted) on disk."""
        if plan.key != key:
            raise PlanKeyMismatch(
                f"plan keyed {plan.key[:12]}… cannot be stored as {key[:12]}…"
            )
        self._remember(key, plan)
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(plan.to_json())
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _remember(self, key: str, plan: ExtrapolationPlan) -> None:
        self._mem[key] = plan
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def get_or_build(self, key: str,
                     build: Callable[[], ExtrapolationPlan]
                     ) -> Tuple[ExtrapolationPlan, str]:
        """The plan for *key*, building (and caching) on a miss.

        Returns ``(plan, source)`` with source one of ``"memory"``,
        ``"disk"``, or ``"built"``.
        """
        before_disk = self.disk_hits
        plan = self.get(key)
        if plan is not None:
            return plan, ("disk" if self.disk_hits > before_disk
                          else "memory")
        started = _wall.perf_counter()
        plan = build()
        plan.build_wall = _wall.perf_counter() - started
        self.builds += 1
        self.put(key, plan)
        return plan, "built"

    def __len__(self) -> int:
        return len(self._mem)

    def stats(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "entries": len(self._mem),
        }
