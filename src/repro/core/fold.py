"""Steady-state iteration folding: eligibility and the fold arithmetic.

Multi-iteration training is periodic by construction: the inter-iteration
fence forces every task of iteration *k* to finish before any task of
iteration *k+1* starts, so each post-fence iteration replays the previous
one's event schedule shifted by one iteration period.  When nothing
time-dependent crosses the fence — no fault windows, no congestion-
adaptive routing state, no runtime observers — simulating the tail
event-by-event recomputes a schedule that is already known.

Folding exploits this: simulate ``fold_warmup`` warm-up iterations
event-by-event, check the last two warm-up durations agree within
``fold_tolerance`` (relative), then extend the remaining ``N - warmup``
iterations algebraically — shift the task/flow timelines by the steady-
state period and scale the additive counters.  The fold is *bounded-
error*, not bit-exact: per-iteration durations of a fully simulated run
drift at machine-epsilon scale (``(t + a) + b != t + (a + b)``; observed
relative drift is ~1e-15 on the acceptance workloads, see
``docs/performance.md``), and the folded tail reproduces the unfolded
schedule to the same order.

This module owns the *decision*: which runs may fold, and why a run may
not.  The static (config-only) half is shared with lint rule PF001; the
dynamic half additionally inspects the built network and the simulator's
runtime observers.  The arithmetic itself lives in
:meth:`repro.core.simulator.TrioSim._run_folded`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Folding engages only when it would skip at least this many iterations;
#: below the threshold the exact event-by-event path is used (and stays
#: bit-identical to builds that predate folding).
FOLD_MIN_FOLDED = 2


@dataclass(frozen=True)
class FoldDecision:
    """Whether one run may fold, and the reason when it may not.

    ``status`` is the string surfaced in ``SimulationResult.profile``
    under ``fold_status``: ``"eligible"`` before the run (rewritten to
    ``"folded"`` / ``"not-steady"`` by the execution), or
    ``"off:<reason>"`` for ineligible runs.
    """

    eligible: bool
    reason: str = ""

    @property
    def status(self) -> str:
        return "eligible" if self.eligible else f"off:{self.reason}"


def config_fold_reason(config) -> Optional[str]:
    """The static (config-only) fold disqualifier, or ``None``.

    Shared by the simulator's eligibility gate and lint rule PF001 so
    the two can never disagree about what a config alone rules out:

    * ``disabled`` — folding switched off (``fold=False`` / ``--no-fold``);
    * ``few-iterations`` — fewer than ``fold_warmup + FOLD_MIN_FOLDED``
      iterations, so there is nothing worth folding;
    * ``faults`` — a non-empty fault spec perturbs the schedule
      time-dependently (a straggler window open during iteration 3 but
      not 4 breaks periodicity);
    * ``custom-network`` — a ``network_factory`` model offers no
      counter-extension contract (:meth:`FlowNetwork.stats_snapshot`).
    """
    if not config.fold:
        return "disabled"
    if config.iterations < config.fold_warmup + FOLD_MIN_FOLDED:
        return "few-iterations"
    if config.faults is not None and not config.faults.is_empty:
        return "faults"
    if config.network_factory is not None:
        return "custom-network"
    return None


def fold_decision(config, network=None, hooks=(), sanitize: bool = False,
                  verify: bool = False) -> FoldDecision:
    """Decide whether a :class:`~repro.core.simulator.TrioSim` run folds.

    Beyond the static config gate (:func:`config_fold_reason`), a run is
    disqualified by anything that must observe every dispatched event:

    * ``dynamic-routing`` — the *engaged* routing strategy is dynamic
      (flowlet / congestion-adaptive): per-flow path choices depend on
      instantaneous congestion state, which the fence does not reset.
      Static strategies (``shortest``, ``ecmp``) choose per pair, not
      per instant, and stay eligible — as do dynamic strategies that the
      simulator nulled on single-path topologies.
    * ``custom-network`` — the built network lacks the
      ``stats_snapshot`` / ``extend_stats`` counter-extension contract.
    * ``hooks`` / ``sanitize`` / ``verify`` — user hooks, the runtime
      sanitizers, and the race detectors are defined over the full event
      stream; folded iterations dispatch no events, so these force the
      exact path.
    """
    reason = config_fold_reason(config)
    if reason is None and hooks:
        reason = "hooks"
    if reason is None and sanitize:
        reason = "sanitize"
    if reason is None and verify:
        reason = "verify"
    if reason is None and network is not None:
        strategy = getattr(network, "routing", None)
        if strategy is not None and getattr(strategy, "dynamic", False):
            reason = "dynamic-routing"
        elif not hasattr(network, "stats_snapshot"):
            reason = "custom-network"
    if reason is not None:
        return FoldDecision(False, reason)
    return FoldDecision(True)


def steady(previous: float, last: float, tolerance: float) -> bool:
    """Whether two consecutive warm-up iteration durations agree.

    Relative comparison against the larger magnitude; an exact match
    always passes (covering ``tolerance=0`` and zero-duration corner
    cases).
    """
    if previous == last:
        return True
    scale = max(abs(previous), abs(last))
    return abs(last - previous) <= tolerance * scale
