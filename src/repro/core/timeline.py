"""Timeline export: visualize simulations (the Daisen analog).

The original TrioSim visualizes execution with Daisen; here the recorded
timeline exports to the Chrome trace-event format, which loads directly
into ``chrome://tracing`` or https://ui.perfetto.dev.  Each GPU and each
network link becomes a track; compute tasks and transfers become duration
events coloured by phase.

Usage::

    result = TrioSim(trace, config).run()
    export_chrome_trace(result, "timeline.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.results import SimulationResult, TimelineRecord

#: Chrome trace-event colour names per phase (see catapult's colour list).
_PHASE_COLORS = {
    "forward": "thread_state_running",
    "backward": "thread_state_runnable",
    "optimizer": "thread_state_iowait",
    None: "generic_work",
}

_MICRO = 1e6  # trace events are in microseconds


def shift_records(records: Iterable[TimelineRecord],
                  offset: float) -> List[TimelineRecord]:
    """Copies of *records* translated *offset* seconds along the timeline.

    The replication primitive of steady-state iteration folding: a folded
    iteration's timeline is the last warm-up iteration's records shifted
    by a whole number of steady-state periods (see
    ``docs/performance.md``).  Resources, phases, and layers are
    preserved, so per-layer/per-phase aggregation and the Chrome trace
    export treat replicated records exactly like simulated ones.

    Clones are built by copying ``__dict__`` instead of going through
    the frozen dataclass constructor: replication runs once per folded
    iteration over every record of the steady-state slice, and the
    constructor's per-field ``object.__setattr__`` calls dominate the
    ``fold_extend`` phase at scale.
    """
    new = object.__new__
    cls = TimelineRecord
    out: List[TimelineRecord] = []
    append = out.append
    for record in records:
        clone = new(cls)
        attrs = clone.__dict__
        attrs.update(record.__dict__)
        attrs["start"] = attrs["start"] + offset
        attrs["end"] = attrs["end"] + offset
        append(clone)
    return out


def timeline_to_events(records: Iterable[TimelineRecord],
                       pid: int = 1) -> List[dict]:
    """Convert timeline records to Chrome duration events ("ph": "X")."""
    tracks: Dict[str, int] = {}
    events: List[dict] = []
    for record in records:
        tid = tracks.setdefault(record.resource, len(tracks))
        events.append({
            "name": record.name,
            "cat": record.kind,
            "ph": "X",
            "ts": record.start * _MICRO,
            "dur": max(record.duration * _MICRO, 0.001),
            "pid": pid,
            "tid": tid,
            "cname": _PHASE_COLORS.get(record.phase, "generic_work"),
            "args": {
                "phase": record.phase or "",
                "layer": record.layer or "",
            },
        })
    # Name the tracks: GPUs first, then links, in first-seen order.
    for resource, tid in tracks.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": resource},
        })
    return events


def export_chrome_trace(result: SimulationResult,
                        path: Union[str, Path],
                        process_name: str = "TrioSim") -> int:
    """Write *result*'s timeline as a Chrome trace file.

    Returns the number of duration events written.  Raises ``ValueError``
    when the result carries no timeline (run with ``record_timeline=True``).
    """
    if not result.timeline:
        raise ValueError(
            "result has no timeline; construct TrioSim with "
            "record_timeline=True"
        )
    events = timeline_to_events(result.timeline)
    events.append({
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": process_name},
    })
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))
    return sum(1 for e in events if e.get("ph") == "X")


def timeline_summary(result: SimulationResult) -> Dict[str, Dict[str, float]]:
    """Per-resource busy time and utilization over the simulated span."""
    span = result.total_time or 1.0
    per_resource: Dict[str, float] = {}
    for record in result.timeline:
        per_resource[record.resource] = (
            per_resource.get(record.resource, 0.0) + record.duration
        )
    return {
        resource: {"busy": busy, "utilization": busy / span}
        for resource, busy in sorted(per_resource.items())
    }
