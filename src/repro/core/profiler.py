"""Pipeline profiler: where did the wall-clock of one run actually go?

With the plan/execute split, "is the cached path fast *and* right?" is a
question every sweep answers per point.  :class:`PipelineProfiler`
accumulates per-phase wall durations (trace-prep / plan / instancing /
engine), plus counters such as how many times the extrapolator actually
built a graph, into a plain dict that rides along in
:attr:`SimulationResult.profile` and aggregates into sweep metrics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

#: Phase names in canonical reporting order.  ``fold_detect`` times the
#: steady-state check between warm-up iterations of a folded run;
#: ``fold_extend`` times the algebraic extension of the folded tail
#: (timeline replication + counter scaling).  Both are absent from
#: unfolded runs.  The ``engine.*`` sub-phases split the engine phase
#: by the instrumented run loop's buckets (heap bookkeeping, handler
#: bodies, engine-level hook dispatch) and appear only under
#: ``profile_engine`` / ``simulate --profile``.
PHASES = ("trace_prep", "plan", "instancing", "fold_detect", "engine",
          "engine.queue_ops", "engine.handler", "engine.hook_overhead",
          "fold_extend")


class PipelineProfiler:
    """Accumulates per-phase wall time and integer counters for one run."""

    def __init__(self):
        self.phases: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self.plan_source: Optional[str] = None
        #: Iteration-folding outcome of the run: ``"folded"``,
        #: ``"not-steady"`` (eligible but the warm-up durations
        #: disagreed), or ``"off:<reason>"`` (see
        #: :func:`repro.core.fold.fold_decision`); ``None`` for
        #: single-iteration runs predating the concept.
        self.fold_status: Optional[str] = None

    @contextmanager
    def phase(self, name: str):
        """Time the body and add its wall duration to phase *name*."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def add_phase(self, name: str, seconds: float) -> None:
        """Add *seconds* of already-measured wall time to phase *name*."""
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    def to_dict(self) -> dict:
        ordered = {name: self.phases[name] for name in PHASES
                   if name in self.phases}
        for name in sorted(self.phases):
            ordered.setdefault(name, self.phases[name])
        out = {"phases": ordered, "counters": dict(self.counters)}
        if self.plan_source is not None:
            out["plan_source"] = self.plan_source
        if self.fold_status is not None:
            out["fold_status"] = self.fold_status
        return out

    def summary(self) -> str:
        """One-line human rendering for CLI output."""
        parts = [f"{name} {seconds * 1e3:.1f} ms"
                 for name, seconds in self.to_dict()["phases"].items()]
        builds = self.counters.get("extrapolator_builds", 0)
        source = self.plan_source or ("built" if builds else "?")
        line = f"pipeline: {' | '.join(parts)} | plan {source}"
        if self.fold_status is not None:
            line += f" | fold {self.fold_status}"
        return line
