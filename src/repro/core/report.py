"""Self-contained HTML simulation reports (the Daisen-style view).

:func:`export_html_report` renders one :class:`SimulationResult` as a
single HTML file with no external dependencies: a summary header, an SVG
Gantt chart (one lane per GPU and per network link, compute bars coloured
by phase, transfers in a neutral tone), per-phase and per-resource
utilization tables, and the slowest operators.  Open it in any browser.

For interactive deep-dives prefer the Chrome trace-event export
(:func:`repro.core.timeline.export_chrome_trace`); this report is the
shareable one-file artifact.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Union

from repro.core.results import SimulationResult, TimelineRecord
from repro.core.timeline import timeline_summary

_PHASE_COLORS = {
    "forward": "#4878a8",
    "backward": "#a85448",
    "optimizer": "#6aa84f",
    None: "#999999",
}
_TRANSFER_COLOR = "#c9a227"

_LANE_HEIGHT = 22
_LANE_GAP = 4
_LABEL_WIDTH = 170
_CHART_WIDTH = 1000

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 75em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin-top: .5em; }
td, th { border: 1px solid #ccc; padding: .25em .6em; font-size: .85em;
         text-align: right; }
th { background: #f2f2f2; } td:first-child, th:first-child { text-align: left; }
.legend span { display: inline-block; margin-right: 1.2em; font-size: .85em; }
.legend i { display: inline-block; width: .9em; height: .9em;
            margin-right: .3em; vertical-align: -0.1em; }
svg text { font-size: 11px; font-family: inherit; }
"""


def _lane_order(records: List[TimelineRecord]) -> List[str]:
    gpus = sorted({r.resource for r in records if r.kind == "compute"})
    links = sorted({r.resource for r in records if r.kind == "transfer"})
    return gpus + links


def _svg_gantt(result: SimulationResult, max_bars: int = 4000) -> str:
    records = result.timeline
    lanes = _lane_order(records)
    if not lanes:
        return "<p>(no timeline recorded)</p>"
    span = result.total_time or 1.0
    scale = _CHART_WIDTH / span
    height = len(lanes) * (_LANE_HEIGHT + _LANE_GAP) + 30
    lane_index = {name: i for i, name in enumerate(lanes)}
    parts = [
        f'<svg width="{_LABEL_WIDTH + _CHART_WIDTH + 20}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    for name, idx in lane_index.items():
        y = idx * (_LANE_HEIGHT + _LANE_GAP)
        parts.append(
            f'<text x="0" y="{y + 15}">{html.escape(name)}</text>'
            f'<rect x="{_LABEL_WIDTH}" y="{y}" width="{_CHART_WIDTH}" '
            f'height="{_LANE_HEIGHT}" fill="#f7f7f7"/>'
        )
    shown = records
    if len(records) > max_bars:
        # Keep the longest bars; tiny slivers are invisible anyway.
        shown = sorted(records, key=lambda r: -r.duration)[:max_bars]
    for record in shown:
        y = lane_index[record.resource] * (_LANE_HEIGHT + _LANE_GAP)
        x = _LABEL_WIDTH + record.start * scale
        width = max(record.duration * scale, 0.4)
        color = (_TRANSFER_COLOR if record.kind == "transfer"
                 else _PHASE_COLORS.get(record.phase, _PHASE_COLORS[None]))
        title = (f"{record.name}: {record.start * 1e3:.3f}-"
                 f"{record.end * 1e3:.3f} ms")
        parts.append(
            f'<rect x="{x:.2f}" y="{y + 2}" width="{width:.2f}" '
            f'height="{_LANE_HEIGHT - 4}" fill="{color}">'
            f'<title>{html.escape(title)}</title></rect>'
        )
    # Time axis.
    axis_y = len(lanes) * (_LANE_HEIGHT + _LANE_GAP) + 12
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = _LABEL_WIDTH + frac * _CHART_WIDTH
        parts.append(
            f'<text x="{x:.0f}" y="{axis_y}">{frac * span * 1e3:.2f} ms</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _phase_table(result: SimulationResult) -> str:
    rows = "".join(
        f"<tr><td>{html.escape(phase)}</td><td>{t * 1e3:.2f}</td></tr>"
        for phase, t in sorted(result.per_phase.items())
    )
    return (
        "<table><tr><th>phase</th><th>busy ms (all GPUs)</th></tr>"
        f"{rows}</table>"
    )


def _utilization_table(result: SimulationResult) -> str:
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td>"
        f"<td>{stats['busy'] * 1e3:.2f}</td>"
        f"<td>{stats['utilization'] * 100:.1f}%</td></tr>"
        for name, stats in timeline_summary(result).items()
    )
    return (
        "<table><tr><th>resource</th><th>busy ms</th><th>utilization</th>"
        f"</tr>{rows}</table>"
    )


def _slowest_table(result: SimulationResult, top: int = 15) -> str:
    slowest = sorted(result.timeline, key=lambda r: -r.duration)[:top]
    rows = "".join(
        f"<tr><td>{html.escape(r.name)}</td><td>{html.escape(r.resource)}</td>"
        f"<td>{r.duration * 1e3:.3f}</td></tr>"
        for r in slowest
    )
    return (
        "<table><tr><th>task</th><th>resource</th><th>ms</th></tr>"
        f"{rows}</table>"
    )


def export_html_report(result: SimulationResult, path: Union[str, Path],
                       title: str = "TrioSim simulation report") -> int:
    """Write a one-file HTML report; returns the timeline bar count.

    Requires a result recorded with ``record_timeline=True``.
    """
    if not result.timeline:
        raise ValueError(
            "result has no timeline; construct TrioSim with "
            "record_timeline=True"
        )
    legend = "".join(
        f'<span><i style="background:{color}"></i>{name}</span>'
        for name, color in (("forward", _PHASE_COLORS["forward"]),
                            ("backward", _PHASE_COLORS["backward"]),
                            ("optimizer", _PHASE_COLORS["optimizer"]),
                            ("transfer", _TRANSFER_COLOR))
    )
    doc = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>{_CSS}</style></head><body>
<h1>{html.escape(title)}</h1>
<p>total <b>{result.total_time * 1e3:.2f} ms</b> ·
compute busy {result.compute_time * 1e3:.2f} ms ·
communication busy {result.communication_time * 1e3:.2f} ms
({result.communication_ratio * 100:.1f}%) ·
simulated in {result.wall_time * 1e3:.0f} ms wall
({result.events} events)</p>
<h2>Timeline</h2>
<div class="legend">{legend}</div>
{_svg_gantt(result)}
<h2>Per-phase compute</h2>
{_phase_table(result)}
<h2>Resource utilization</h2>
{_utilization_table(result)}
<h2>Slowest tasks</h2>
{_slowest_table(result)}
</body></html>"""
    Path(path).write_text(doc)
    return len(result.timeline)
