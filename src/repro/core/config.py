"""Simulation configuration.

Everything the user can vary without re-collecting a trace (the paper's
headline capability): GPU count, parallelism strategy, batch size, network
topology/bandwidth/latency, target GPU model, DDP bucketing, GPipe chunks,
and the network-model implementation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Callable, Optional, Union

import networkx as nx

from repro.faults.spec import FaultSpec
from repro.gpus.specs import Platform
from repro.network.topology import TopologySpec

PARALLELISMS = ("single", "dp", "ddp", "tp", "pp", "hybrid", "fsdp")

#: Bumped whenever the meaning of a serialized config changes; part of
#: every :meth:`SimulationConfig.cache_key` so stale cache entries from
#: older schemas can never be returned.  v2 added ``routing`` /
#: ``routing_seed`` / ``oversubscription`` and :class:`TopologySpec`
#: topologies; v3 added the ``fold`` / ``fold_warmup`` /
#: ``fold_tolerance`` steady-state iteration-folding knobs.  v1 and v2
#: dicts still load (:meth:`SimulationConfig.from_dict` fills the new
#: fields with their defaults).  The per-point deadline fields
#: (``deadline_soft`` / ``deadline_hard``) ride schema v3 without a bump:
#: they are execution policy, excluded from :meth:`cache_key`, and absent
#: fields default to ``None`` — pre-deadline dicts and cache entries stay
#: valid byte-for-byte.
CONFIG_SCHEMA_VERSION = 3


@dataclass
class SimulationConfig:
    """Configuration of one TrioSim run.

    Attributes
    ----------
    parallelism:
        One of ``single``, ``dp`` (threaded DataParallel), ``ddp``
        (DistributedDataParallel), ``tp`` (tensor parallel), ``pp``
        (GPipe pipeline parallel), ``hybrid`` (DP x PP), or ``fsdp``
        (ZeRO-3-style fully-sharded data parallelism).
    num_gpus:
        Simulated GPU count.
    batch_size:
        Simulated batch size; defaults to the trace's.  Per-GPU for
        ``single``/``dp``/``ddp``; global (sharded/micro-batched) for
        ``tp``/``pp``.
    chunks:
        Micro-batch count for pipeline parallelism.
    dp_degree:
        For ``hybrid`` parallelism: the number of data-parallel pipeline
        replicas; the pipeline depth is ``num_gpus // dp_degree``.
    tp_scheme:
        Tensor-parallel communication scheme: ``layerwise`` (gather after
        every sharded layer, the paper's BlackSamorez style) or
        ``megatron`` (column/row-parallel pairing, two collectives per
        transformer block).
    pp_schedule:
        Pipeline schedule: ``gpipe`` (all-forward-then-backward, the
        paper's implementation) or ``1f1b`` (one-forward-one-backward,
        same bubble, far lower peak activation memory).
    topology:
        Topology name (built with the link parameters below), a
        :class:`~repro.network.topology.TopologySpec` (name + builder
        params — the registry-backed way to parameterize fabrics), a
        dict (``TopologySpec.to_dict()`` output), or a prebuilt
        ``networkx.Graph`` for arbitrary, possibly asymmetric networks.
        A spec with no params is normalized to its plain name, so old
        string configs keep their exact cache keys.
    link_bandwidth / link_latency:
        Link parameters used when *topology* is a name.  Like the paper,
        feed *achieved* (measured) bandwidth here.
    routing / routing_seed:
        Routing-strategy name (``shortest``, ``ecmp``, ``flowlet``,
        ``adaptive`` — see :mod:`repro.network.routing`) plus the hash
        seed.  Only multi-path fabrics are affected: on single-path
        topologies every strategy is bit-identical to ``shortest``.
    oversubscription:
        Convenience override of the ``leaf_spine`` oversubscription
        ratio (downlink:uplink capacity).  ``None`` keeps the builder's
        own default/params; a value is injected when the chosen topology
        supports the parameter and rejected (by lint rule NW002 and at
        build time) when it does not.
    gpu:
        Target GPU name for cross-GPU prediction; when it differs from the
        trace's GPU the trace is first rescaled with
        :class:`~repro.perfmodel.scaling.CrossGPUScaler`.
    network_factory:
        Optional callable ``(engine, config) -> NetworkModel`` replacing
        the default flow network (e.g. the photonic model).
    bucket_bytes / overlap:
        DDP gradient bucketing controls.
    collective_scheme:
        AllReduce algorithm for data parallelism: ``ring`` (default),
        ``tree`` (latency-optimal for small buffers), or ``hierarchical``
        (multi-node: intra-node reduce-scatter, inter-node rails,
        intra-node all-gather; requires ``gpus_per_node``).
    gpus_per_node:
        Node size for hierarchical collectives and the ``multi_node``
        topology.
    perf_model:
        Operator performance model: ``li`` (linear regression, default)
        or ``piecewise`` (throughput curves; better for under-utilized
        operators — the paper's NeuSight-style alternative).
    iterations:
        Training iterations to simulate back to back (the paper:
        "TrioSim can finish the simulation of multiple batches of DNN
        training within seconds").
    gpu_slowdowns:
        Optional mapping of GPU name to a compute-duration multiplier
        (e.g. ``{"gpu2": 1.5}`` makes gpu2 50% slower) — heterogeneous or
        straggler systems, which symmetric-trace tools cannot express.
    include_host_transfers / host_bandwidth / host_latency:
        Model the CPU -> GPU input-batch copy each iteration over a host
        link of the given achieved bandwidth (off by default; data
        loaders usually prefetch).
    faults:
        Optional :class:`~repro.faults.spec.FaultSpec` — a deterministic
        schedule of stragglers, link degradations, and fail-stop failures
        injected into the run (see ``docs/faults.md``).  ``None`` (or an
        empty spec) leaves the simulation bit-identical to a fault-free
        build.
    fold / fold_warmup / fold_tolerance:
        Steady-state iteration folding (see ``docs/performance.md``): a
        multi-iteration run simulates ``fold_warmup`` warm-up iterations
        event-by-event, checks that the last two warm-up durations agree
        within ``fold_tolerance`` (relative), and extends the remaining
        iterations algebraically by shifting the steady-state schedule.
        Folding engages only on fold-eligible runs (no faults, no
        dynamic routing, no observers); ineligible or non-steady runs
        fall back to the exact event-by-event path, bit-identically.
        ``fold=False`` disables folding outright (the ``--no-fold``
        escape hatch).
    deadline_soft / deadline_hard:
        Optional per-point wall-clock budgets in seconds, enforced by the
        sweep service (see ``docs/resilience.md``).  The soft deadline is
        cooperative: an engine-heartbeat check stops the run between
        events and reports partial progress; the hard deadline is the
        watchdog backstop (``SIGALRM`` / async-exception injection) for
        runs wedged inside native code.  Both are *execution policy*, not
        simulation semantics — they are serialized with the config but
        excluded from :meth:`cache_key`, because a result that completed
        under any deadline is bit-identical to one computed without.
        ``None`` (the default) disables enforcement.
    """

    parallelism: str = "ddp"
    num_gpus: int = 1
    batch_size: Optional[int] = None
    chunks: int = 1
    dp_degree: Optional[int] = None
    tp_scheme: str = "layerwise"
    pp_schedule: str = "gpipe"
    topology: Union[str, TopologySpec, dict, nx.Graph] = "ring"
    link_bandwidth: float = 25e9
    link_latency: float = 2e-6
    routing: str = "shortest"
    routing_seed: int = 0
    oversubscription: Optional[float] = None
    gpu: Optional[str] = None
    network_factory: Optional[Callable] = None
    bucket_bytes: int = 25 * 1024 * 1024
    overlap: bool = True
    collective_scheme: str = "ring"
    gpus_per_node: Optional[int] = None
    perf_model: str = "li"
    iterations: int = 1
    gpu_slowdowns: Optional[dict] = None
    include_host_transfers: bool = False
    host_bandwidth: float = 12e9
    host_latency: float = 5e-6
    faults: Optional[FaultSpec] = None
    fold: bool = True
    fold_warmup: int = 2
    fold_tolerance: float = 1e-9
    deadline_soft: Optional[float] = None
    deadline_hard: Optional[float] = None

    def __post_init__(self):
        if isinstance(self.faults, dict):
            self.faults = FaultSpec.from_dict(self.faults)
        if isinstance(self.topology, dict):
            # Graph payloads are decoded by from_dict before construction;
            # any other dict is a serialized TopologySpec.
            self.topology = TopologySpec.from_dict(self.topology)
        if isinstance(self.topology, TopologySpec) and not self.topology.params:
            # Param-less specs collapse to the plain name so configs that
            # predate TopologySpec keep bit-identical serialized forms
            # (and therefore cache keys modulo the schema version).
            self.topology = self.topology.name
        if not isinstance(self.routing, str) or not self.routing:
            raise ValueError("routing must be a strategy name (str)")
        if not isinstance(self.routing_seed, int) or isinstance(
                self.routing_seed, bool):
            raise ValueError("routing_seed must be an int")
        if self.oversubscription is not None:
            self.oversubscription = float(self.oversubscription)
            if self.oversubscription <= 0:
                raise ValueError("oversubscription must be positive")
        if self.parallelism not in PARALLELISMS:
            raise ValueError(
                f"unknown parallelism {self.parallelism!r}; known: {PARALLELISMS}"
            )
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise ValueError("link_latency must be non-negative")
        if self.host_bandwidth <= 0:
            raise ValueError("host_bandwidth must be positive")
        if self.host_latency < 0:
            raise ValueError("host_latency must be non-negative")
        if self.bucket_bytes < 1:
            raise ValueError("bucket_bytes must be >= 1")
        if self.gpu_slowdowns is not None:
            bad = [g for g, f in self.gpu_slowdowns.items() if f <= 0]
            if bad:
                raise ValueError(f"gpu_slowdowns must be positive: {bad}")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not isinstance(self.fold, bool):
            raise ValueError("fold must be a bool")
        if not isinstance(self.fold_warmup, int) or isinstance(
                self.fold_warmup, bool) or self.fold_warmup < 1:
            raise ValueError("fold_warmup must be an int >= 1")
        self.fold_tolerance = float(self.fold_tolerance)
        if self.fold_tolerance < 0:
            raise ValueError("fold_tolerance must be non-negative")
        for name in ("deadline_soft", "deadline_hard"):
            value = getattr(self, name)
            if value is None:
                continue
            value = float(value)
            setattr(self, name, value)
            if value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if (self.deadline_soft is not None and self.deadline_hard is not None
                and self.deadline_soft > self.deadline_hard):
            raise ValueError("deadline_soft must not exceed deadline_hard")
        if self.tp_scheme not in ("layerwise", "megatron"):
            raise ValueError(f"unknown tp_scheme {self.tp_scheme!r}")
        if self.pp_schedule not in ("gpipe", "1f1b"):
            raise ValueError(f"unknown pp_schedule {self.pp_schedule!r}")
        if self.perf_model not in ("li", "piecewise"):
            raise ValueError(f"unknown perf_model {self.perf_model!r}")
        if self.collective_scheme not in ("ring", "tree", "hierarchical"):
            raise ValueError(
                f"unknown collective scheme {self.collective_scheme!r}"
            )
        if self.collective_scheme == "hierarchical":
            if not self.gpus_per_node or self.num_gpus % self.gpus_per_node:
                raise ValueError(
                    "hierarchical collectives need gpus_per_node dividing num_gpus"
                )
        if self.parallelism == "hybrid":
            if self.dp_degree is None or self.dp_degree < 1:
                raise ValueError("hybrid parallelism requires dp_degree >= 1")
            if self.num_gpus % self.dp_degree:
                raise ValueError("num_gpus must be divisible by dp_degree")

    @classmethod
    def for_platform(cls, platform: Platform, **overrides) -> "SimulationConfig":
        """Build a config pre-filled from a validation platform (P1-P3)."""
        values = dict(
            num_gpus=platform.num_gpus,
            topology=platform.topology,
            link_bandwidth=platform.link_bandwidth,
            link_latency=platform.link_latency,
            gpu=platform.gpu.name,
        )
        values.update(overrides)
        return cls(**values)

    # ------------------------------------------------------------------
    # Serialization (the sweep service's process-boundary format)
    # ------------------------------------------------------------------
    @property
    def is_serializable(self) -> bool:
        """Whether this config can cross a process boundary / be cached.

        Only ``network_factory`` (an arbitrary callable) falls outside the
        serializable subset; prebuilt ``networkx`` topologies round-trip.
        """
        return self.network_factory is None

    def to_dict(self) -> dict:
        """A JSON-safe dict that :meth:`from_dict` restores exactly.

        Raises ``ValueError`` when the config holds a ``network_factory``
        callable, which cannot be serialized.
        """
        if self.network_factory is not None:
            raise ValueError(
                "configs with a network_factory are not serializable; "
                "run them in-process instead"
            )
        data = {"schema_version": CONFIG_SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "network_factory":
                continue
            if f.name == "faults" and value is not None:
                value = value.to_dict()
            if f.name == "topology" and isinstance(value, TopologySpec):
                value = value.to_dict()
            if f.name == "topology" and isinstance(value, nx.Graph):
                value = {
                    "__graph__": {
                        "nodes": [str(n) for n in value.nodes],
                        "edges": [
                            [str(u), str(v), dict(attrs)]
                            for u, v, attrs in value.edges(data=True)
                        ],
                    }
                }
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Missing fields take their defaults (so partial dicts — e.g. the
        ``base`` section of a sweep spec — are accepted); unknown keys are
        rejected so schema drift fails loudly.
        """
        data = dict(data)
        version = data.pop("schema_version", CONFIG_SCHEMA_VERSION)
        if version not in (1, 2, CONFIG_SCHEMA_VERSION):
            raise ValueError(f"unsupported config schema version {version}")
        # v1 dicts predate routing/routing_seed/oversubscription and
        # TopologySpec topologies; v2 dicts predate the fold knobs;
        # absent fields take their defaults below, which reproduce the
        # older semantics exactly (folding is differential-tested to
        # reproduce unfolded totals within fold_tolerance).
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        if "network_factory" in data and data["network_factory"] is not None:
            raise ValueError("network_factory cannot be deserialized")
        topology = data.get("topology")
        if isinstance(topology, dict) and "__graph__" in topology:
            payload = topology["__graph__"]
            graph = nx.Graph()
            graph.add_nodes_from(payload["nodes"])
            for u, v, attrs in payload["edges"]:
                graph.add_edge(u, v, **attrs)
            data["topology"] = graph
        return cls(**data)

    def cache_key(self) -> str:
        """Stable content digest of this config.

        Two configs with equal serialized content share a key; any field
        change (or a schema-version bump) changes it.  Used to address the
        sweep service's on-disk result cache.

        Execution-policy fields (``deadline_soft`` / ``deadline_hard``) are
        excluded: they bound *how long* a point may run, not *what* it
        computes, so a result that completed under a deadline is the same
        result — and pre-deadline cache entries stay addressable.
        """
        data = self.to_dict()
        data.pop("deadline_soft", None)
        data.pop("deadline_hard", None)
        canonical = json.dumps(data, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    @classmethod
    def from_cli_args(cls, ns) -> "SimulationConfig":
        """Build a config from an argparse namespace.

        The single construction path shared by ``repro simulate`` and
        ``repro sweep`` overrides — missing attributes fall back to field
        defaults, so partial namespaces work.
        """
        slow = getattr(ns, "slow", None) or []
        slowdowns = {
            spec.split("=")[0]: float(spec.split("=")[1]) for spec in slow
        } or None
        mapping = dict(
            parallelism=getattr(ns, "parallelism", None),
            num_gpus=getattr(ns, "num_gpus", None),
            batch_size=getattr(ns, "batch", None),
            chunks=getattr(ns, "chunks", None),
            dp_degree=getattr(ns, "dp_degree", None),
            topology=getattr(ns, "topology", None),
            link_bandwidth=getattr(ns, "bandwidth", None),
            link_latency=getattr(ns, "latency", None),
            routing=getattr(ns, "routing", None),
            routing_seed=getattr(ns, "routing_seed", None),
            oversubscription=getattr(ns, "oversubscription", None),
            gpu=getattr(ns, "gpu", None),
            collective_scheme=getattr(ns, "collective", None),
            gpus_per_node=getattr(ns, "gpus_per_node", None),
            tp_scheme=getattr(ns, "tp_scheme", None),
            pp_schedule=getattr(ns, "pp_schedule", None),
            iterations=getattr(ns, "iterations", None),
            gpu_slowdowns=slowdowns,
            fold=(False if getattr(ns, "no_fold", False) else None),
            fold_warmup=getattr(ns, "fold_warmup", None),
            fold_tolerance=getattr(ns, "fold_tolerance", None),
        )
        # Optional-by-design fields keep None; the rest default when absent.
        optional = {"batch_size", "dp_degree", "gpu", "gpus_per_node",
                    "gpu_slowdowns"}
        kwargs = {
            name: value for name, value in mapping.items()
            if value is not None or name in optional
        }
        return cls(**kwargs)
