"""Simulation configuration.

Everything the user can vary without re-collecting a trace (the paper's
headline capability): GPU count, parallelism strategy, batch size, network
topology/bandwidth/latency, target GPU model, DDP bucketing, GPipe chunks,
and the network-model implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import networkx as nx

from repro.gpus.specs import Platform

PARALLELISMS = ("single", "dp", "ddp", "tp", "pp", "hybrid", "fsdp")


@dataclass
class SimulationConfig:
    """Configuration of one TrioSim run.

    Attributes
    ----------
    parallelism:
        One of ``single``, ``dp`` (threaded DataParallel), ``ddp``
        (DistributedDataParallel), ``tp`` (tensor parallel), ``pp``
        (GPipe pipeline parallel), ``hybrid`` (DP x PP), or ``fsdp``
        (ZeRO-3-style fully-sharded data parallelism).
    num_gpus:
        Simulated GPU count.
    batch_size:
        Simulated batch size; defaults to the trace's.  Per-GPU for
        ``single``/``dp``/``ddp``; global (sharded/micro-batched) for
        ``tp``/``pp``.
    chunks:
        Micro-batch count for pipeline parallelism.
    dp_degree:
        For ``hybrid`` parallelism: the number of data-parallel pipeline
        replicas; the pipeline depth is ``num_gpus // dp_degree``.
    tp_scheme:
        Tensor-parallel communication scheme: ``layerwise`` (gather after
        every sharded layer, the paper's BlackSamorez style) or
        ``megatron`` (column/row-parallel pairing, two collectives per
        transformer block).
    pp_schedule:
        Pipeline schedule: ``gpipe`` (all-forward-then-backward, the
        paper's implementation) or ``1f1b`` (one-forward-one-backward,
        same bubble, far lower peak activation memory).
    topology:
        Topology name (built with the link parameters below) or a prebuilt
        ``networkx.Graph`` for arbitrary, possibly asymmetric networks.
    link_bandwidth / link_latency:
        Link parameters used when *topology* is a name.  Like the paper,
        feed *achieved* (measured) bandwidth here.
    gpu:
        Target GPU name for cross-GPU prediction; when it differs from the
        trace's GPU the trace is first rescaled with
        :class:`~repro.perfmodel.scaling.CrossGPUScaler`.
    network_factory:
        Optional callable ``(engine, config) -> NetworkModel`` replacing
        the default flow network (e.g. the photonic model).
    bucket_bytes / overlap:
        DDP gradient bucketing controls.
    collective_scheme:
        AllReduce algorithm for data parallelism: ``ring`` (default),
        ``tree`` (latency-optimal for small buffers), or ``hierarchical``
        (multi-node: intra-node reduce-scatter, inter-node rails,
        intra-node all-gather; requires ``gpus_per_node``).
    gpus_per_node:
        Node size for hierarchical collectives and the ``multi_node``
        topology.
    perf_model:
        Operator performance model: ``li`` (linear regression, default)
        or ``piecewise`` (throughput curves; better for under-utilized
        operators — the paper's NeuSight-style alternative).
    iterations:
        Training iterations to simulate back to back (the paper:
        "TrioSim can finish the simulation of multiple batches of DNN
        training within seconds").
    gpu_slowdowns:
        Optional mapping of GPU name to a compute-duration multiplier
        (e.g. ``{"gpu2": 1.5}`` makes gpu2 50% slower) — heterogeneous or
        straggler systems, which symmetric-trace tools cannot express.
    include_host_transfers / host_bandwidth / host_latency:
        Model the CPU -> GPU input-batch copy each iteration over a host
        link of the given achieved bandwidth (off by default; data
        loaders usually prefetch).
    """

    parallelism: str = "ddp"
    num_gpus: int = 1
    batch_size: Optional[int] = None
    chunks: int = 1
    dp_degree: Optional[int] = None
    tp_scheme: str = "layerwise"
    pp_schedule: str = "gpipe"
    topology: Union[str, nx.Graph] = "ring"
    link_bandwidth: float = 25e9
    link_latency: float = 2e-6
    gpu: Optional[str] = None
    network_factory: Optional[Callable] = None
    bucket_bytes: int = 25 * 1024 * 1024
    overlap: bool = True
    collective_scheme: str = "ring"
    gpus_per_node: Optional[int] = None
    perf_model: str = "li"
    iterations: int = 1
    gpu_slowdowns: Optional[dict] = None
    include_host_transfers: bool = False
    host_bandwidth: float = 12e9
    host_latency: float = 5e-6

    def __post_init__(self):
        if self.parallelism not in PARALLELISMS:
            raise ValueError(
                f"unknown parallelism {self.parallelism!r}; known: {PARALLELISMS}"
            )
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.gpu_slowdowns is not None:
            bad = [g for g, f in self.gpu_slowdowns.items() if f <= 0]
            if bad:
                raise ValueError(f"gpu_slowdowns must be positive: {bad}")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.tp_scheme not in ("layerwise", "megatron"):
            raise ValueError(f"unknown tp_scheme {self.tp_scheme!r}")
        if self.pp_schedule not in ("gpipe", "1f1b"):
            raise ValueError(f"unknown pp_schedule {self.pp_schedule!r}")
        if self.perf_model not in ("li", "piecewise"):
            raise ValueError(f"unknown perf_model {self.perf_model!r}")
        if self.collective_scheme not in ("ring", "tree", "hierarchical"):
            raise ValueError(
                f"unknown collective scheme {self.collective_scheme!r}"
            )
        if self.collective_scheme == "hierarchical":
            if not self.gpus_per_node or self.num_gpus % self.gpus_per_node:
                raise ValueError(
                    "hierarchical collectives need gpus_per_node dividing num_gpus"
                )
        if self.parallelism == "hybrid":
            if self.dp_degree is None or self.dp_degree < 1:
                raise ValueError("hybrid parallelism requires dp_degree >= 1")
            if self.num_gpus % self.dp_degree:
                raise ValueError("num_gpus must be divisible by dp_degree")

    @classmethod
    def for_platform(cls, platform: Platform, **overrides) -> "SimulationConfig":
        """Build a config pre-filled from a validation platform (P1-P3)."""
        fields = dict(
            num_gpus=platform.num_gpus,
            topology=platform.topology,
            link_bandwidth=platform.link_bandwidth,
            link_latency=platform.link_latency,
            gpu=platform.gpu.name,
        )
        fields.update(overrides)
        return cls(**fields)
