"""TrioSim's core: the simulator facade and its task-graph machinery.

The public entry point is :class:`~repro.core.simulator.TrioSim`: give it a
single-GPU :class:`~repro.trace.Trace` and a
:class:`~repro.core.config.SimulationConfig`, call :meth:`run`, and read
the :class:`~repro.core.results.SimulationResult`.
"""

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult, TimelineRecord
from repro.core.simulator import TrioSim
from repro.core.taskgraph import SimTask, TaskGraphSimulator
from repro.core.report import export_html_report
from repro.core.timeline import export_chrome_trace, timeline_summary, timeline_to_events

__all__ = [
    "SimTask",
    "export_chrome_trace",
    "export_html_report",
    "timeline_summary",
    "timeline_to_events",
    "SimulationConfig",
    "SimulationResult",
    "TaskGraphSimulator",
    "TimelineRecord",
    "TrioSim",
]
