"""The TrioSim facade.

Wires together the pieces the paper's Figure 2 shows: the input trace, the
multi-GPU trace extrapolator, the linear-regression performance model, and
the lightweight network model, all running on the event-driven engine.

Typical use::

    from repro import TrioSim, SimulationConfig, Tracer, get_model, get_gpu

    tracer = Tracer(get_gpu("A100"))
    trace = tracer.trace(get_model("resnet50"), batch_size=128)
    config = SimulationConfig(parallelism="ddp", num_gpus=4,
                              topology="ring", link_bandwidth=234e9)
    result = TrioSim(trace, config).run()
    print(result.summary())
"""

from __future__ import annotations

import time as _wall
from collections import defaultdict
from typing import Dict, Optional

import networkx as nx

from repro.core.config import SimulationConfig
from repro.core.fold import fold_decision, steady
from repro.core.plan import ExtrapolationPlan, PlanBuilder, PlanCache, plan_key
from repro.core.profiler import PipelineProfiler
from repro.core.results import SimulationResult, TimelineRecorder
from repro.core.taskgraph import TaskGraphSimulator
from repro.core.timeline import shift_records
from repro.engine.engine import Engine
from repro.extrapolator.base import Extrapolator
from repro.extrapolator.hybrid import HybridExtrapolator
from repro.extrapolator.data_parallel import (
    DataParallelExtrapolator,
    DistributedDataParallelExtrapolator,
)
from repro.extrapolator.optime import OpTimeModel
from repro.extrapolator.pipeline import PipelineExtrapolator
from repro.extrapolator.single import SingleGPUExtrapolator
from repro.extrapolator.tensor_parallel import TensorParallelExtrapolator
from repro.network.flow import FlowNetwork
from repro.network.topology import TOPOLOGIES, TopologySpec, build_topology_cached
from repro.perfmodel.scaling import CrossGPUScaler
from repro.trace.trace import Trace


def iteration_times_from_fences(fence_end_times, total: float):
    """Per-iteration durations from fence boundaries, clamped to *total*.

    A faulted run's stall can leave the last fence's recorded end time
    past the simulation's finish time; clamping keeps every boundary
    inside ``[0, total]`` so iteration durations never go negative and
    always sum to *total*.
    """
    boundaries = [0.0]
    boundaries.extend(min(t, total) for t in fence_end_times)
    boundaries.append(total)
    return [boundaries[i + 1] - boundaries[i]
            for i in range(len(boundaries) - 1)]


class TrioSim:
    """Trace-driven multi-GPU DNN training simulator.

    Parameters
    ----------
    trace:
        A single-GPU operator trace (see :class:`~repro.trace.Tracer`).
    config:
        What to simulate (see :class:`~repro.core.config.SimulationConfig`).
    record_timeline:
        Collect per-task timeline records (small overhead; on by default).
    hooks:
        Extra observers attached to the task-graph simulator — e.g. a
        :class:`repro.engine.Monitor` for AkitaRTM-style live progress.
    op_time:
        Optional pre-built :class:`~repro.extrapolator.optime.OpTimeModel`.
        The sweep service fits the (potentially expensive) performance
        model once per ``(trace, target GPU)`` and shares it across every
        sweep point; it must have been built on the *prepared* (already
        cross-GPU-rescaled) trace.
    sanitize:
        Statically check the extrapolated task graph before any event is
        scheduled (raising :class:`repro.analysis.AnalysisError` on
        dependency cycles or bad transfer endpoints) and run the runtime
        sanitizers during the simulation; findings land in
        :attr:`sanitizer_report`.
    allow_chaos:
        Permit a ``chaos_kill_at`` in ``config.faults`` to arm (the
        process then SIGKILLs itself mid-run).  Only the sweep service's
        sacrificial worker processes pass ``True``; everywhere else such
        a spec raises :class:`repro.faults.ChaosError`.
    plan:
        Optional pre-built :class:`~repro.core.plan.ExtrapolationPlan` to
        execute instead of running the extrapolator.  Its key must match
        this (trace, config) pair — checked by lint rule PL001, raising
        :class:`repro.analysis.AnalysisError` on mismatch.
    plan_cache:
        Optional :class:`~repro.core.plan.PlanCache`.  :meth:`run` looks
        the plan up by :meth:`plan_key` and builds (and caches) it only
        on a miss, so runs differing only in network/topology/fault
        parameters extrapolate once.
    verify:
        Run the two-tier verifier around the simulation: the deep static
        graph verifier (``DV`` rules — cycles, dead tasks, mismatched
        collectives, memory-infeasible schedules) over the fully
        instantiated graph before any event is scheduled, raising
        :class:`repro.analysis.AnalysisError` on errors, and the
        determinism race detectors (``RC`` rules) during the run.
        Findings land in :attr:`verify_report`; the dispatch-order
        digest in :attr:`verify_digest`.  Pass the string ``"races"``
        to skip the static tier (when the caller verified the plan
        already) and run only the race detectors.
    """

    def __init__(self, trace: Trace, config: SimulationConfig,
                 record_timeline: bool = True, hooks=(), op_time=None,
                 sanitize: bool = False, allow_chaos: bool = False,
                 plan: ExtrapolationPlan = None,
                 plan_cache: PlanCache = None, verify: bool = False,
                 heartbeat=None, heartbeat_every: int = 4096,
                 scheduler: str = "auto", profile_engine: bool = False):
        if scheduler not in ("auto", "soa", "object"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                "expected 'auto', 'soa', or 'object'"
            )
        if scheduler == "soa" and (sanitize or verify):
            raise ValueError(
                "--sanitize/--verify walk the object task graph; use "
                "scheduler='auto' (they fall back to the object "
                "scheduler automatically)"
            )
        #: Exact-path scheduler choice: ``auto`` runs the columnar
        #: (structure-of-arrays) core except under sanitize/verify,
        #: ``object`` forces the per-task object walk (the differential
        #: benchmark's reference arm), ``soa`` asserts the columnar core.
        self.scheduler = scheduler
        #: When true the engine runs its instrumented loop and the
        #: result's profile gains ``engine.queue_ops`` /
        #: ``engine.handler`` / ``engine.hook_overhead`` sub-phases —
        #: where exact-path time actually goes.  Dispatch order is
        #: unchanged; the instrumentation costs ~2 clock reads/event.
        self.profile_engine = profile_engine
        self._engine_profile: Optional[Dict[str, float]] = \
            {} if profile_engine else None
        self.config = config
        self.record_timeline = record_timeline
        self.hooks = tuple(hooks)
        #: Optional ``(engine) -> None`` callback fired every
        #: *heartbeat_every* dispatched events — the sweep service's
        #: cooperative soft-deadline check.  Unlike hooks, a heartbeat
        #: never affects fold eligibility: it observes wall clock, not
        #: simulation state.
        self.heartbeat = heartbeat
        self.heartbeat_every = heartbeat_every
        self.sanitize = sanitize
        self.allow_chaos = allow_chaos
        self.plan = plan
        self.plan_cache = plan_cache
        self.verify = verify
        #: Runtime sanitizer findings of the last :meth:`run` (a
        #: :class:`repro.analysis.Report`), or ``None`` when off.
        self.sanitizer_report = None
        #: Verifier findings of the last :meth:`run` — static (``DV``)
        #: warnings plus dynamic (``RC``) races — or ``None`` when off.
        self.verify_report = None
        #: Stable fold of the run's dispatched ``(time, seq)`` schedule;
        #: equal digests certify two runs dispatched identically.
        self.verify_digest = None
        #: Injection counters of the last :meth:`run` (see
        #: :meth:`repro.faults.FaultInjector.stats`), or ``None`` when the
        #: config carries no (non-empty) fault spec.
        self.fault_stats = None
        _prep_started = _wall.perf_counter()
        self.trace = self._prepare_trace(trace)
        if op_time is not None and op_time.trace is not self.trace:
            raise ValueError(
                "op_time was fitted on a different trace; build it on the "
                "prepared (cross-GPU-rescaled) trace"
            )
        self.op_time = op_time or OpTimeModel(self.trace, self._build_perf_model())
        self._trace_prep_wall = _wall.perf_counter() - _prep_started

    def _build_perf_model(self):
        if self.config.perf_model == "piecewise":
            from repro.perfmodel.piecewise import PiecewiseThroughputModel

            return PiecewiseThroughputModel.fit(self.trace)
        return None  # lazy Li's Model default

    # ------------------------------------------------------------------
    # Trace preparation (cross-GPU rescaling)
    # ------------------------------------------------------------------
    def _prepare_trace(self, trace: Trace) -> Trace:
        target = self.config.gpu
        if target is not None and target.upper() != trace.gpu_name.upper():
            scaler = CrossGPUScaler.between(trace.gpu_name, target)
            return scaler.convert_trace(trace)
        return trace

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _batch_scale(self) -> float:
        if self.config.batch_size is None:
            return 1.0
        return self.config.batch_size / self.trace.batch_size

    def _build_network(self, engine: Engine):
        if self.config.network_factory is not None:
            return self.config.network_factory(engine, self.config)
        cfg = self.config
        # "shortest" maps to no strategy object at all — the exact legacy
        # routing codepath, so default configs stay bit-identical.
        routing = cfg.routing if cfg.routing != "shortest" else None
        topology = cfg.topology
        if not isinstance(topology, nx.Graph):
            if isinstance(topology, TopologySpec):
                name, params = topology.name, dict(topology.params)
            else:
                name, params = topology, {}
            # Routing strategies engage only on topologies registered as
            # multipath (leaf_spine, fat_tree_clos, ...).  Single-path
            # topologies model deterministic dimension-order-style routes
            # — even where a mesh has several equal-cost lattice paths —
            # so every strategy stays bit-identical to ``shortest`` there.
            # Prebuilt graphs (below) are the explicit opt-in escape hatch.
            if routing is not None and name in TOPOLOGIES \
                    and not TOPOLOGIES.get(name).multipath:
                routing = None
            if cfg.oversubscription is not None:
                if not TOPOLOGIES.supports_param(name, "oversubscription"):
                    raise ValueError(
                        f"topology {name!r} does not take an "
                        "oversubscription parameter (only fabrics with "
                        "uplink tiers do, e.g. leaf_spine)"
                    )
                params["oversubscription"] = cfg.oversubscription
            # Named topologies come from the process-level cache — built
            # (and host-augmented) once per parameter key, shared across
            # sweep points.  Fault injection mutates link attributes
            # (``set_link_capacity``), so faulted runs get a copy.
            host = ((cfg.host_bandwidth, cfg.host_latency)
                    if cfg.include_host_transfers else None)
            topology = build_topology_cached(
                name, cfg.num_gpus,
                cfg.link_bandwidth, cfg.link_latency, host=host, **params,
            )
            if cfg.faults is not None and not cfg.faults.is_empty:
                topology = topology.copy()
            return FlowNetwork(engine, topology, routing=routing,
                               routing_seed=cfg.routing_seed)
        if cfg.include_host_transfers:
            topology = topology.copy()
            topology.add_node("host")
            for i in range(cfg.num_gpus):
                topology.add_edge(
                    "host", f"gpu{i}",
                    bandwidth=cfg.host_bandwidth,
                    latency=cfg.host_latency,
                )
        return FlowNetwork(engine, topology, routing=routing,
                           routing_seed=cfg.routing_seed)

    def _build_extrapolator(self) -> Extrapolator:
        cfg = self.config
        scale = self._batch_scale()
        if cfg.parallelism == "single":
            return SingleGPUExtrapolator(self.trace, self.op_time, batch_scale=scale)
        if cfg.parallelism == "dp":
            return DataParallelExtrapolator(
                self.trace, self.op_time, cfg.num_gpus, batch_scale=scale
            )
        if cfg.parallelism == "ddp":
            groups = None
            if cfg.collective_scheme == "hierarchical":
                from repro.network.topology import node_groups

                groups = node_groups(
                    cfg.num_gpus // cfg.gpus_per_node, cfg.gpus_per_node
                )
            return DistributedDataParallelExtrapolator(
                self.trace, self.op_time, cfg.num_gpus, batch_scale=scale,
                bucket_bytes=cfg.bucket_bytes, overlap=cfg.overlap,
                collective_scheme=cfg.collective_scheme, node_groups=groups,
            )
        if cfg.parallelism == "tp":
            return TensorParallelExtrapolator(
                self.trace, self.op_time, cfg.num_gpus, batch_scale=scale,
                scheme=cfg.tp_scheme,
            )
        if cfg.parallelism == "pp":
            return PipelineExtrapolator(
                self.trace, self.op_time, cfg.num_gpus,
                chunks=cfg.chunks, batch_scale=scale,
                schedule=cfg.pp_schedule,
            )
        if cfg.parallelism == "fsdp":
            from repro.extrapolator.fsdp import FSDPExtrapolator

            return FSDPExtrapolator(
                self.trace, self.op_time, cfg.num_gpus, batch_scale=scale,
                unit_bytes=cfg.bucket_bytes,
            )
        if cfg.parallelism == "hybrid":
            return HybridExtrapolator(
                self.trace, self.op_time, cfg.dp_degree,
                cfg.num_gpus // cfg.dp_degree,
                chunks=cfg.chunks, batch_scale=scale,
            )
        raise ValueError(f"unknown parallelism {cfg.parallelism!r}")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_key(self) -> str:
        """Content key of this run's extrapolation plan (see
        :func:`repro.core.plan.plan_key`): prepared-trace digest plus the
        iteration-invariant parallelism knobs, excluding every network /
        topology / fault / iteration parameter."""
        return plan_key(self.trace, self.config)

    def build_plan(self) -> ExtrapolationPlan:
        """Run the extrapolator once, recording into a reusable plan."""
        builder = PlanBuilder()
        extrapolator = self._build_extrapolator()
        extrapolator.fetch_inputs = self.config.include_host_transfers
        extrapolator.build(builder)
        return builder.finish(self.plan_key())

    def _resolve_plan(self, profiler: PipelineProfiler) -> ExtrapolationPlan:
        if self.plan is not None:
            from repro.analysis import AnalysisError, lint_plan

            report = lint_plan(self.plan, self.config, self.trace,
                               prepared=True)
            if report.has_errors:
                raise AnalysisError(
                    report, "supplied plan does not match this config")
            profiler.plan_source = "supplied"
            return self.plan
        if self.plan_cache is not None:
            plan, source = self.plan_cache.get_or_build(
                self.plan_key(), self.build_plan)
            profiler.plan_source = source
            if source == "built":
                profiler.count("extrapolator_builds")
            return plan
        profiler.plan_source = "built"
        profiler.count("extrapolator_builds")
        return self.build_plan()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the configured training iterations and return the result.

        Multi-iteration runs that qualify (see
        :func:`repro.core.fold.fold_decision` and ``docs/performance.md``)
        take the steady-state folding path: ``fold_warmup`` iterations
        are simulated event-by-event and the rest are extended
        algebraically.  Everything else — single iterations, faulted or
        observed runs, ``fold=False`` — takes the exact event-by-event
        path, bit-identically to builds that predate folding.
        """
        started = _wall.perf_counter()
        profiler = PipelineProfiler()
        profiler.add_phase("trace_prep", self._trace_prep_wall)
        with profiler.phase("plan"):
            plan = self._resolve_plan(profiler)
        with profiler.phase("engine"):
            engine = Engine()
            if self._engine_profile is not None:
                engine.set_profile(self._engine_profile)
            if self.heartbeat is not None:
                engine.set_heartbeat(self.heartbeat, self.heartbeat_every)
            network = self._build_network(engine)
            sim = TaskGraphSimulator(engine, network)
        if self.config.gpu_slowdowns:
            sim.compute_scale.update(self.config.gpu_slowdowns)
        recorder = TimelineRecorder() if self.record_timeline else None
        if recorder is not None:
            sim.accept_hook(recorder)
        for hook in self.hooks:
            sim.accept_hook(hook)
        decision = fold_decision(self.config, network=network,
                                 hooks=self.hooks, sanitize=self.sanitize,
                                 verify=bool(self.verify))
        if decision.eligible:
            return self._run_folded(profiler, plan, engine, network, sim,
                                    recorder, started)
        if self.config.iterations > 1:
            profiler.fold_status = decision.status
        return self._run_exact(profiler, plan, engine, network, sim,
                               recorder, started)

    def _run_exact(self, profiler: PipelineProfiler, plan: ExtrapolationPlan,
                   engine: Engine, network, sim: TaskGraphSimulator,
                   recorder, started: float) -> SimulationResult:
        """The exact event-by-event path (every iteration fully simulated)."""
        # The columnar (SoA) scheduler is dispatch-identical to the
        # object walk; sanitize/verify need the object graph (their
        # rules read SimTask.dependents), so they keep the object path.
        use_soa = (self.scheduler != "object"
                   and not self.sanitize and not self.verify)
        with profiler.phase("instancing"):
            if use_soa:
                plan.instantiate_iterations_soa(sim, self.config.iterations)
            else:
                plan.instantiate_iterations(sim, self.config.iterations)
        profiler.count("plan_instances", self.config.iterations)
        profiler.count("plan_tasks", len(plan))
        injector = None
        faults = self.config.faults
        if faults is not None and not faults.is_empty:
            from repro.faults import FaultInjector

            injector = FaultInjector(engine, sim, network, faults,
                                     allow_chaos=self.allow_chaos).install()
        suite = None
        if self.sanitize:
            from repro.analysis import AnalysisError, SanitizerSuite, lint_taskgraph

            pre = lint_taskgraph(sim, topology=getattr(network, "topology", None))
            if pre.has_errors:
                raise AnalysisError(pre, "task graph failed pre-run analysis")
            suite = SanitizerSuite().attach(engine=engine, network=network,
                                            injector=injector, sim=sim)
        races = None
        if self.verify:
            from repro.analysis import AnalysisError, Report
            from repro.analysis.verifier import (
                RaceDetectorSuite,
                verify_taskgraph,
            )

            if self.verify == "races":
                # Tier B only: the caller (e.g. the sweep runner, which
                # verifies each distinct plan once pre-dispatch) already
                # ran the static pass.
                self.verify_report = Report()
            else:
                with profiler.phase("verify"):
                    pre = verify_taskgraph(
                        sim, topology=getattr(network, "topology", None),
                        config=self.config)
                if pre.has_errors:
                    raise AnalysisError(pre, "task graph failed verification")
                self.verify_report = pre
            races = RaceDetectorSuite().attach(engine=engine, sim=sim)
        with profiler.phase("engine"):
            total = sim.run()
        if injector is not None:
            self.fault_stats = injector.stats()
        if suite is not None:
            self.sanitizer_report = suite.finalize(engine)
        if races is not None:
            self.verify_report.merge(races.finalize())
            self.verify_digest = races.order_digest
        iteration_times = []
        if self.config.iterations > 1:
            iteration_times = iteration_times_from_fences(
                [f.end_time for f in sim.fences], total)
        return self._assemble(profiler, engine, network, sim, recorder,
                              started, total, iteration_times)

    # ------------------------------------------------------------------
    # Steady-state iteration folding
    # ------------------------------------------------------------------
    def _run_folded(self, profiler: PipelineProfiler,
                    plan: ExtrapolationPlan, engine: Engine, network,
                    sim: TaskGraphSimulator, recorder,
                    started: float) -> SimulationResult:
        """Warm up event-by-event, then extend the tail algebraically.

        Each warm-up iteration is instanced and drained in its own
        :meth:`TaskGraphSimulator.run` call — timing-identical to
        upfront instancing, because the inter-iteration fence already
        forces a full drain between iterations.  If the last two warm-up
        durations agree within ``fold_tolerance`` the remaining
        iterations are *folded*: boundaries extend by repeated addition
        of the steady-state period (so iteration times telescope to the
        total exactly), additive counters extend by the last warm-up
        iteration's delta, and the timeline replicates the last warm-up
        slice shifted by whole periods.  Otherwise the remaining
        iterations are simulated exactly (``fold_status: not-steady``).
        """
        cfg = self.config
        warmup = cfg.fold_warmup
        created = None
        boundaries = []   # end time of each simulated iteration
        durations = []
        before = None
        for index in range(warmup):
            with profiler.phase("instancing"):
                if index:
                    sim.fence_from(f"iteration{index}",
                                   plan.terminals(created))
                created = plan.instantiate(sim)
            if index == warmup - 1:
                before = self._fold_snapshot(sim, network, recorder)
            with profiler.phase("engine"):
                end = sim.run()
            durations.append(end - (boundaries[-1] if boundaries else 0.0))
            boundaries.append(end)
        profiler.count("plan_instances", warmup)
        profiler.count("plan_tasks", len(plan))
        with profiler.phase("fold_detect"):
            # fold_warmup=1 has a single duration and nothing to compare:
            # the steadiness check is skipped by construction (documented
            # as the maximum-speed escape hatch in docs/performance.md).
            settled = warmup < 2 or steady(durations[-2], durations[-1],
                                           cfg.fold_tolerance)
        folded = cfg.iterations - warmup
        if not settled:
            profiler.fold_status = "not-steady"
            with profiler.phase("instancing"):
                plan.instantiate_iterations(sim, folded, start=warmup)
            profiler.count("plan_instances", folded)
            with profiler.phase("engine"):
                total = sim.run()
            iteration_times = iteration_times_from_fences(
                [f.end_time for f in sim.fences], total)
            return self._assemble(profiler, engine, network, sim, recorder,
                                  started, total, iteration_times)
        profiler.fold_status = "folded"
        profiler.count("iterations_folded", folded)
        after = self._fold_snapshot(sim, network, recorder)
        with profiler.phase("fold_extend"):
            period = durations[-1]
            base = boundaries[-1]
            for _ in range(folded):
                base = base + period  # repeated addition: times telescope
                boundaries.append(base)
            total = boundaries[-1]
            iteration_times = [boundaries[0]]
            iteration_times.extend(boundaries[i + 1] - boundaries[i]
                                   for i in range(len(boundaries) - 1))
            self._fold_extend(sim, network, recorder, before, after,
                              boundaries, warmup, folded)
        return self._assemble(profiler, engine, network, sim, recorder,
                              started, total, iteration_times)

    @staticmethod
    def _fold_snapshot(sim: TaskGraphSimulator, network, recorder) -> dict:
        """Cumulative counters before/after the last warm-up iteration."""
        return {
            "busy": {g: sim.gpu_busy_time(g) for g in sim.gpus_seen},
            "comm_time": sim.comm_task_time,
            "comm_bytes": sim.comm_bytes,
            "records": len(recorder.records) if recorder is not None else 0,
            "network": network.stats_snapshot(),
        }

    @staticmethod
    def _fold_extend(sim: TaskGraphSimulator, network, recorder,
                     before: dict, after: dict, boundaries,
                     warmup: int, folded: int) -> None:
        """Replay the last warm-up iteration's deltas *folded* times."""
        for gpu in sim.gpus_seen:
            delta = after["busy"][gpu] - before["busy"].get(gpu, 0.0)
            sim.add_busy_time(gpu, folded * delta)
        sim.comm_task_time += folded * (after["comm_time"]
                                        - before["comm_time"])
        sim.comm_bytes += folded * (after["comm_bytes"]
                                    - before["comm_bytes"])
        network.extend_stats(before["network"], after["network"], folded)
        if recorder is not None:
            span = recorder.records[before["records"]:after["records"]]
            last_end = boundaries[warmup - 1]
            for index in range(folded):
                offset = boundaries[warmup + index] - last_end
                recorder.records.extend(shift_records(span, offset))

    def _assemble(self, profiler: PipelineProfiler, engine: Engine, network,
                  sim: TaskGraphSimulator, recorder, started: float,
                  total: float, iteration_times) -> SimulationResult:
        wall = _wall.perf_counter() - started
        per_layer = defaultdict(float)
        per_phase = defaultdict(float)
        timeline = recorder.records if recorder is not None else []
        for record in timeline:
            if record.kind != "compute":
                continue
            if record.layer:
                per_layer[record.layer] += record.duration
            if record.phase:
                per_phase[record.phase] += record.duration
        if self._engine_profile:
            # Split the engine phase into the instrumented loop's
            # buckets (queue_ops / handler / hook_overhead) so
            # ``simulate --profile`` shows where exact-path time goes.
            for bucket, seconds in sorted(self._engine_profile.items()):
                profiler.add_phase(f"engine.{bucket}", seconds)
        summarize = getattr(network, "network_summary", None)
        return SimulationResult(
            total_time=total,
            compute_time=sim.compute_task_time,
            communication_time=sim.comm_task_time,
            per_gpu_busy={g: sim.gpu_busy_time(g) for g in sim.gpus_seen},
            per_layer=dict(per_layer),
            per_phase=dict(per_phase),
            timeline=timeline,
            wall_time=wall,
            events=engine.dispatched_events,
            iteration_times=iteration_times,
            profile=profiler.to_dict(),
            network=summarize(total_time=total) if summarize else {},
        )
