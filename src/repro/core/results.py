"""Simulation results: totals, breakdowns, and the timeline.

TrioSim "can return the total predicted execution time ... the
communication time and computation time of each layer or stage ... [and]
the timeline of the communication process among GPUs or the computation
process on each GPU" (paper §4.1).  :class:`SimulationResult` carries all
of that plus simulator performance counters (Figure 14).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.engine.hooks import HookCtx

#: Version of the serialized result format.  Part of every cache key, so
#: a schema change silently invalidates old cache entries instead of
#: returning mis-shaped results.  v2 added the ``profile`` pipeline
#: breakdown; v3 added the ``network`` routing/congestion summary (v2
#: payloads still load, with an empty summary).
RESULT_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class TimelineRecord:
    """One completed task on the simulated timeline."""

    name: str
    kind: str            # "compute" | "transfer" | "barrier"
    resource: str        # GPU name, or "src->dst" for transfers
    start: float
    end: float
    phase: Optional[str] = None
    layer: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineRecord":
        return cls(**data)


class TimelineRecorder:
    """Hook collecting :class:`TimelineRecord` entries from the task graph."""

    def __init__(self):
        self.records: List[TimelineRecord] = []

    def func(self, ctx: HookCtx) -> None:
        if ctx.pos != "task_end":
            return
        task = ctx.item
        if task.kind == "compute":
            resource = task.gpu
        elif task.kind == "transfer":
            resource = f"{task.src}->{task.dst}"
        else:
            return  # barriers carry no time
        self.records.append(
            TimelineRecord(
                name=task.name,
                kind=task.kind,
                resource=resource,
                start=task.start_time or 0.0,
                end=task.end_time or 0.0,
                phase=task.meta.get("phase"),
                layer=task.meta.get("layer"),
            )
        )


@dataclass
class SimulationResult:
    """Output of one TrioSim run.

    ``compute_time`` and ``communication_time`` are aggregate busy times
    (summed across GPUs / transfers); ``total_time`` is the simulated
    end-to-end iteration time.  ``per_layer`` maps layer name to its total
    compute time across GPUs.  ``wall_time`` and ``events`` report the
    simulator's own performance (paper Figure 14).  ``profile`` is the
    pipeline profiler's per-phase wall breakdown and counters (see
    ``docs/plans.md``); like ``wall_time`` it describes *how* the result
    was produced, so bit-identity comparisons exclude it.  ``network``
    is the flow network's routing/congestion summary — per-link bytes,
    flows, peak concurrency and utilization, flow-completion-time stats,
    and the per-pair path choices on multi-path fabrics (see
    ``docs/network.md``); it is deterministic simulation content and
    *included* in bit-identity comparisons.
    """

    total_time: float
    compute_time: float
    communication_time: float
    per_gpu_busy: Dict[str, float] = field(default_factory=dict)
    per_layer: Dict[str, float] = field(default_factory=dict)
    per_phase: Dict[str, float] = field(default_factory=dict)
    timeline: List[TimelineRecord] = field(default_factory=list)
    wall_time: float = 0.0
    events: int = 0
    iteration_times: List[float] = field(default_factory=list)
    profile: dict = field(default_factory=dict)
    network: dict = field(default_factory=dict)

    @property
    def communication_ratio(self) -> float:
        """Communication share of total busy time (paper Figure 13)."""
        busy = self.compute_time + self.communication_time
        return self.communication_time / busy if busy > 0 else 0.0

    def summary(self) -> str:
        return (
            f"total {self.total_time * 1e3:.2f} ms | "
            f"compute {self.compute_time * 1e3:.2f} ms | "
            f"comm {self.communication_time * 1e3:.2f} ms "
            f"({self.communication_ratio * 100:.1f}%) | "
            f"simulated in {self.wall_time * 1e3:.0f} ms wall, "
            f"{self.events} events"
        )

    # ------------------------------------------------------------------
    # Serialization — the single codepath shared by the CLI, the
    # experiments harness, and the sweep service's result cache.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "total_time": self.total_time,
            "compute_time": self.compute_time,
            "communication_time": self.communication_time,
            "per_gpu_busy": dict(self.per_gpu_busy),
            "per_layer": dict(self.per_layer),
            "per_phase": dict(self.per_phase),
            "timeline": [r.to_dict() for r in self.timeline],
            "wall_time": self.wall_time,
            "events": self.events,
            "iteration_times": list(self.iteration_times),
            "profile": dict(self.profile),
            "network": dict(self.network),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        version = data.get("schema_version")
        # v2 payloads (pre-``network``) still load; the summary is simply
        # absent, which the empty-dict default represents.
        if version not in (2, RESULT_SCHEMA_VERSION):
            raise ValueError(f"unsupported result schema version {version}")
        return cls(
            total_time=data["total_time"],
            compute_time=data["compute_time"],
            communication_time=data["communication_time"],
            per_gpu_busy=dict(data["per_gpu_busy"]),
            per_layer=dict(data["per_layer"]),
            per_phase=dict(data["per_phase"]),
            timeline=[TimelineRecord.from_dict(r) for r in data["timeline"]],
            wall_time=data["wall_time"],
            events=data["events"],
            iteration_times=list(data["iteration_times"]),
            profile=dict(data.get("profile") or {}),
            network=dict(data.get("network") or {}),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string (floats round-trip bit-exactly)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        return cls.from_dict(json.loads(text))
