"""Tensor placement: which GPU holds which tensor.

The trace extrapolator consults the store before every operator (paper
§4.3: "TrioSim then checks if these GPUs have the required data ... if
not, TrioSim inserts data movement operators").  The store follows the
paper's assumptions: a tensor lives at a single authoritative location,
and copies made for an operator are tracked so later operators on the same
GPU need no re-fetch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


class TensorStore:
    """Tracks tensor residency across devices.

    Capacity accounting is optional: pass per-device capacities to have
    :meth:`place` raise when a device would exceed its memory.
    """

    def __init__(self, capacities: Optional[Dict[str, float]] = None):
        self._locations: Dict[int, Set[str]] = {}
        self._home: Dict[int, str] = {}
        self._sizes: Dict[int, float] = {}
        self._capacities = dict(capacities) if capacities else None
        self._used: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, tensor_id: int, device: str, nbytes: float = 0.0) -> None:
        """Record that *device* holds *tensor_id* (its home if first)."""
        if tensor_id not in self._locations:
            self._locations[tensor_id] = set()
            self._home[tensor_id] = device
            self._sizes[tensor_id] = float(nbytes)
        if device in self._locations[tensor_id]:
            return
        size = self._sizes[tensor_id]
        if self._capacities is not None:
            used = self._used.get(device, 0.0) + size
            cap = self._capacities.get(device)
            if cap is not None and used > cap:
                raise MemoryError(
                    f"device {device} over capacity placing tensor {tensor_id}"
                )
            self._used[device] = used
        self._locations[tensor_id].add(device)

    def evict(self, tensor_id: int, device: str) -> None:
        """Drop *device*'s copy (the home copy may not be evicted)."""
        if self._home.get(tensor_id) == device:
            raise ValueError(f"cannot evict home copy of tensor {tensor_id}")
        locations = self._locations.get(tensor_id, set())
        if device in locations:
            locations.remove(device)
            if self._capacities is not None:
                self._used[device] -= self._sizes[tensor_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def holds(self, tensor_id: int, device: str) -> bool:
        return device in self._locations.get(tensor_id, set())

    def home_of(self, tensor_id: int) -> str:
        """The authoritative location (paper assumption: a tensor is
        always stored on a single remote location)."""
        return self._home[tensor_id]

    def locations(self, tensor_id: int) -> Set[str]:
        return set(self._locations.get(tensor_id, set()))

    def used_bytes(self, device: str) -> float:
        return self._used.get(device, 0.0)

    def missing(self, tensor_ids: Iterable[int], device: str) -> List[int]:
        """Tensor IDs the device must fetch before an operator can run."""
        return [t for t in tensor_ids if not self.holds(t, device)]

    def fetch_plan(self, tensor_ids: Iterable[int], device: str) -> List[tuple]:
        """(tensor_id, src_device, nbytes) transfers needed by *device*."""
        plan = []
        for tid in self.missing(tensor_ids, device):
            plan.append((tid, self.home_of(tid), self._sizes.get(tid, 0.0)))
        return plan
