"""Per-GPU memory estimation and out-of-memory checking.

The paper repeatedly hits memory walls on real hardware ("other models
are out of memory when the batch size is 256"; Llama traced at batch 16
"to avoid out-of-memory issues").  This estimator predicts, from a trace
alone, whether a configuration fits a GPU — letting users rule out
configurations *before* simulating them, something the physical-testbed
workflow cannot do cheaply.

The standard training-footprint accounting:

* parameters + gradients + optimizer state (SGD momentum: 1x params),
* activations saved for backward (every forward output), divided by the
  parallelism's sharding rules,
* a fixed framework/workspace reserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gpus.specs import GPUSpec, get_gpu
from repro.trace.trace import Trace
from repro.workloads.graph import TENSOR_PARALLEL_KINDS

#: CUDA context + cuDNN workspace + allocator slack (bytes).
FRAMEWORK_RESERVE = 1.5e9

#: Optimizer state multiple of parameter bytes (SGD with momentum).
OPTIMIZER_STATE_FACTOR = 1.0


@dataclass(frozen=True)
class MemoryEstimate:
    """Predicted peak memory of one GPU under a configuration."""

    params: float
    gradients: float
    optimizer_state: float
    activations: float
    reserve: float = FRAMEWORK_RESERVE

    @property
    def total(self) -> float:
        return (self.params + self.gradients + self.optimizer_state
                + self.activations + self.reserve)

    def fits(self, gpu: GPUSpec) -> bool:
        return self.total <= gpu.mem_capacity

    def headroom(self, gpu: GPUSpec) -> float:
        """Free bytes left on *gpu* (negative when over capacity)."""
        return gpu.mem_capacity - self.total


def estimate_memory(trace: Trace, parallelism: str = "single",
                    num_gpus: int = 1, batch_size: Optional[int] = None,
                    chunks: int = 1, dp_degree: Optional[int] = None,
                    pp_schedule: str = "gpipe") -> MemoryEstimate:
    """Peak per-GPU memory for a configuration derived from *trace*.

    Sharding rules follow the extrapolators: ``dp``/``ddp`` replicate
    parameters and scale activations with the per-GPU batch; ``tp`` shards
    parameters and output activations of shardable layers; ``pp`` holds a
    1/``num_gpus`` slice of both, with activations of all in-flight
    micro-batches resident (GPipe stores every micro-batch's forward
    activations until its backward).
    """
    if parallelism not in ("single", "dp", "ddp", "tp", "pp", "fsdp", "hybrid"):
        raise ValueError(f"unknown parallelism {parallelism!r}")
    if num_gpus < 1 or chunks < 1:
        raise ValueError("num_gpus and chunks must be >= 1")
    batch_scale = (batch_size / trace.batch_size) if batch_size else 1.0

    param_bytes = float(sum(t.nbytes for t in trace.weight_tensors()))
    # Forward activations saved for backward: sum of per-op outputs.
    act_bytes = 0.0
    shardable_params = 0.0
    shardable_acts = 0.0
    for op in trace.forward_ops:
        _in, out_act, op_params = trace.op_bytes_detail(op)
        act_bytes += out_act
        if op.kind in TENSOR_PARALLEL_KINDS:
            shardable_acts += out_act
            shardable_params += op_params
    act_bytes *= batch_scale
    shardable_acts *= batch_scale

    if parallelism in ("single", "dp", "ddp"):
        params = param_bytes
        acts = act_bytes
    elif parallelism == "fsdp":
        # ZeRO-3: everything parameter-shaped shards across ranks; only
        # one gathered unit of full parameters is live at a time.
        params = param_bytes / num_gpus + 25 * 1024 * 1024
        acts = act_bytes
    elif parallelism == "tp":
        params = (param_bytes - shardable_params) + shardable_params / num_gpus
        acts = (act_bytes - shardable_acts) + shardable_acts / num_gpus
    elif parallelism == "hybrid":
        # DP x PP: each GPU holds one stage of one replica.
        stages = num_gpus // (dp_degree or 1)
        params = param_bytes / max(stages, 1)
        acts = act_bytes / max(stages, 1)
    else:  # pp: one stage's slice of parameters and activations
        params = param_bytes / num_gpus
        acts = act_bytes / num_gpus  # GPipe: all chunks' micros resident
        if pp_schedule == "1f1b" and chunks > num_gpus:
            # 1F1B keeps at most `num_gpus` micro-batches of activations
            # alive per stage instead of all `chunks`.
            acts *= num_gpus / chunks
    grads = params
    opt_state = OPTIMIZER_STATE_FACTOR * params
    return MemoryEstimate(
        params=params, gradients=grads,
        optimizer_state=opt_state, activations=acts,
    )


def check_fits(trace: Trace, gpu_name: str, **config) -> Dict[str, float]:
    """Convenience wrapper: estimate and compare against a named GPU.

    Returns a dict with the component sizes, total, capacity, and
    headroom; raises nothing (callers decide how to react).
    """
    gpu = get_gpu(gpu_name)
    estimate = estimate_memory(trace, **config)
    return {
        "params": estimate.params,
        "gradients": estimate.gradients,
        "optimizer_state": estimate.optimizer_state,
        "activations": estimate.activations,
        "reserve": estimate.reserve,
        "total": estimate.total,
        "capacity": gpu.mem_capacity,
        "headroom": estimate.headroom(gpu),
        "fits": float(estimate.fits(gpu)),
    }
