"""Tensor placement tracking and memory estimation."""

from repro.memory.estimator import MemoryEstimate, check_fits, estimate_memory
from repro.memory.tensor_store import TensorStore

__all__ = ["MemoryEstimate", "TensorStore", "check_fits", "estimate_memory"]
