"""Components, ports, and connections — the Akita messaging abstractions.

A :class:`Component` is a simulated device (a GPU, a network model, a
protocol coordinator).  Components expose :class:`Port` objects; ports are
plugged into a :class:`Connection`, which moves :class:`Message` objects
between them.  The paper's photonic case study highlights this decoupling:
swapping the network only requires a different ``Connection`` implementation
("call the PlugIn method to associate the device port with the connection —
no need to modify the device code").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.engine.engine import Engine
from repro.engine.events import Event
from repro.engine.hooks import Hookable


class Message:
    """A unit of data exchanged between ports.

    Attributes
    ----------
    src, dst:
        Names of the sending and receiving ports.
    size_bytes:
        Payload size used by network models to compute transfer time.
    payload:
        Arbitrary content delivered to the receiver.
    """

    __slots__ = ("src", "dst", "size_bytes", "payload", "send_time", "recv_time")

    def __init__(self, src: str, dst: str, size_bytes: float = 0.0, payload=None):
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.payload = payload
        self.send_time: Optional[float] = None
        self.recv_time: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Message {self.src}->{self.dst} {self.size_bytes:.0f}B>"


class Port:
    """A named endpoint owned by a component.

    Incoming messages are buffered (optionally bounded); the owning
    component is notified and drains the buffer with :meth:`retrieve`.
    """

    def __init__(self, owner: "Component", name: str, buffer_capacity: Optional[int] = None):
        self.owner = owner
        self.name = name
        self.buffer_capacity = buffer_capacity
        self._buffer: Deque[Message] = deque()
        self.connection: Optional["Connection"] = None

    def can_accept(self) -> bool:
        """Whether the incoming buffer has room for one more message."""
        if self.buffer_capacity is None:
            return True
        return len(self._buffer) < self.buffer_capacity

    def deliver(self, msg: Message, time: float) -> None:
        """Place *msg* into the buffer and notify the owner (connection side)."""
        if not self.can_accept():
            raise BufferError(f"port {self.name} buffer full")
        msg.recv_time = time
        self._buffer.append(msg)
        self.owner.notify_recv(self, time)

    def retrieve(self) -> Optional[Message]:
        """Pop the oldest buffered message, or ``None`` when empty."""
        if not self._buffer:
            return None
        msg = self._buffer.popleft()
        if self.connection is not None:
            self.connection.notify_buffer_freed(self)
        return msg

    def peek(self) -> Optional[Message]:
        return self._buffer[0] if self._buffer else None

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def send(self, msg: Message, time: float) -> None:
        """Hand *msg* to the attached connection for transport."""
        if self.connection is None:
            raise RuntimeError(f"port {self.name} is not plugged into a connection")
        msg.send_time = time
        self.connection.transfer(msg, time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name}>"


class Component(Hookable):
    """Base class for simulated devices.

    Subclasses create ports with :meth:`add_port` and override
    :meth:`notify_recv` to react to arriving messages.
    """

    def __init__(self, engine: Engine, name: str):
        super().__init__()
        self.engine = engine
        self.name = name
        self.ports: Dict[str, Port] = {}

    def add_port(self, name: str, buffer_capacity: Optional[int] = None) -> Port:
        """Create a port named ``<component>.<name>`` and register it."""
        full_name = f"{self.name}.{name}"
        if name in self.ports:
            raise ValueError(f"duplicate port {full_name}")
        port = Port(self, full_name, buffer_capacity)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        return self.ports[name]

    def notify_recv(self, port: Port, time: float) -> None:
        """Called when a message lands in *port*'s buffer.  Default: no-op."""

    def handle(self, event: Event) -> None:
        """Default event handler; subclasses override as needed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Connection:
    """Moves messages between plugged-in ports.

    This base implementation delivers instantly (zero latency, infinite
    bandwidth) — useful for control messages and tests.  Real transports
    (the flow-based network, the photonic network) subclass and override
    :meth:`transfer`.
    """

    def __init__(self, engine: Engine, name: str = "conn"):
        self.engine = engine
        self.name = name
        self._ports: Dict[str, Port] = {}

    def plug_in(self, port: Port) -> None:
        """Associate *port* with this connection (the paper's ``PlugIn``)."""
        if port.name in self._ports:
            raise ValueError(f"port {port.name} already plugged in")
        self._ports[port.name] = port
        port.connection = self

    def port_by_name(self, name: str) -> Port:
        return self._ports[name]

    def transfer(self, msg: Message, time: float) -> None:
        """Deliver *msg* to its destination port immediately."""
        dst = self._ports.get(msg.dst)
        if dst is None:
            raise KeyError(f"destination port {msg.dst} not plugged into {self.name}")
        dst.deliver(msg, time)

    def notify_buffer_freed(self, port: Port) -> None:
        """Called when *port* drains a message; backpressure hook."""
