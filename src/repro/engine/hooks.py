"""Hook system for observing simulation internals.

Hooks are the Akita-style observation mechanism: any :class:`Hookable`
object invokes its registered hooks at named positions, passing a
:class:`HookCtx` describing what happened.  Monitors, tracers, and the
timeline recorder are all implemented as hooks, keeping observation code
out of the simulation logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Protocol, runtime_checkable


@dataclass(frozen=True)
class HookCtx:
    """Context handed to hooks when a hook position fires.

    Attributes
    ----------
    pos:
        Name of the hook position (e.g. ``"before_event"``,
        ``"task_start"``).
    time:
        Virtual time at which the position fired.
    item:
        The object of interest (an event, a task, a flow, ...).
    detail:
        Optional extra key/value information.
    """

    pos: str
    time: float
    item: Any = None
    detail: dict = field(default_factory=dict)


@runtime_checkable
class Hook(Protocol):
    """Observer invoked at hook positions."""

    def func(self, ctx: HookCtx) -> None:
        """React to the hook position described by *ctx*."""


class Hookable:
    """Mixin providing hook registration and invocation."""

    def __init__(self):
        self._hooks: List[Hook] = []

    def accept_hook(self, hook: Hook) -> None:
        """Register *hook* to be invoked at this object's hook positions."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Hook) -> None:
        """Unregister a previously accepted hook."""
        self._hooks.remove(hook)

    @property
    def num_hooks(self) -> int:
        return len(self._hooks)

    def invoke_hooks(self, ctx: HookCtx) -> None:
        """Invoke every registered hook with *ctx* (no-op when none)."""
        for hook in self._hooks:
            hook.func(ctx)
