"""Real-time simulation monitoring (the AkitaRTM analog).

:class:`Monitor` is a hook that records progress records — one per hook
position it observes — and can summarize event throughput.  TrioSim uses
this for its "real-time monitoring" capability; here it also powers the
timeline output of :mod:`repro.core`.
"""

from __future__ import annotations

import time as _wall_time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.hooks import HookCtx


@dataclass(frozen=True)
class ProgressRecord:
    """One observed hook firing."""

    pos: str
    virtual_time: float
    wall_time: float
    item: object
    detail: dict


class Monitor:
    """Hook that accumulates :class:`ProgressRecord` entries.

    Parameters
    ----------
    positions:
        Optional whitelist of hook positions to record; record everything
        when ``None``.
    max_records:
        Bound on stored records (oldest dropped beyond it) so long
        simulations do not exhaust memory.
    """

    def __init__(self, positions: Optional[List[str]] = None, max_records: int = 1_000_000):
        self.positions = set(positions) if positions is not None else None
        self.max_records = max_records
        self.records: List[ProgressRecord] = []
        self.counts: Dict[str, int] = {}
        self._start_wall = _wall_time.perf_counter()

    def func(self, ctx: HookCtx) -> None:
        """Hook entry point."""
        self.counts[ctx.pos] = self.counts.get(ctx.pos, 0) + 1
        if self.positions is not None and ctx.pos not in self.positions:
            return
        if len(self.records) >= self.max_records:
            self.records.pop(0)
        self.records.append(
            ProgressRecord(
                pos=ctx.pos,
                virtual_time=ctx.time,
                wall_time=_wall_time.perf_counter() - self._start_wall,
                item=ctx.item,
                detail=dict(ctx.detail),
            )
        )

    def events_per_second(self) -> float:
        """Wall-clock event dispatch rate observed so far."""
        elapsed = _wall_time.perf_counter() - self._start_wall
        total = sum(self.counts.values())
        return total / elapsed if elapsed > 0 else 0.0

    def summary(self) -> Dict[str, int]:
        """Counts of firings per hook position."""
        return dict(self.counts)
