"""Event-driven simulation engine (Akita analog).

The engine is the substrate every other subsystem builds on.  It provides:

* :class:`~repro.engine.events.Event` — a unit of future work bound to a
  virtual time and a handler.
* :class:`~repro.engine.engine.Engine` — the event kernel: a priority queue
  of events, a virtual clock, and a run loop.
* :class:`~repro.engine.component.Component` / :class:`Port` /
  :class:`Connection` — message-passing building blocks for simulated
  devices, mirroring the Akita Simulator Engine's abstractions.
* :class:`~repro.engine.hooks.Hook` — observation points for monitoring and
  tracing (the AkitaRTM / Daisen analog).
"""

from repro.engine.component import Component, Connection, Message, Port
from repro.engine.engine import Engine
from repro.engine.events import CallbackEvent, Event, EventHandler
from repro.engine.hooks import Hook, HookCtx, Hookable
from repro.engine.monitor import Monitor, ProgressRecord

__all__ = [
    "CallbackEvent",
    "Component",
    "Connection",
    "Engine",
    "Event",
    "EventHandler",
    "Hook",
    "HookCtx",
    "Hookable",
    "Message",
    "Monitor",
    "Port",
    "ProgressRecord",
]
