"""The event-driven simulation kernel.

The :class:`Engine` owns the virtual clock and the event queue.  Handlers
react to events and schedule more events; the engine repeatedly pops the
earliest event and dispatches it until the queue drains (or a limit is hit).

This mirrors the Akita Simulator Engine used by the original TrioSim: the
event-driven style lets the simulator "fast-forward unnecessary details" —
an operator that takes 3 ms is one event, not three million cycles.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.engine.events import CallbackEvent, Event
from repro.engine.hooks import HookCtx, Hookable

#: Hook positions emitted by the engine.
HOOK_BEFORE_EVENT = "before_event"
HOOK_AFTER_EVENT = "after_event"


class SimulationLimitError(RuntimeError):
    """Raised when the engine exceeds its configured event budget."""


#: Compaction floor: cancelled entries must both dominate the queue AND
#: number at least this many before the heap is rebuilt.  Without the
#: floor, small queues churn — two live events and three cancelled ones
#: would trigger a (pointless) rebuild, and tight cancel/reschedule loops
#: on near-empty queues would re-heapify on almost every cancellation.
COMPACT_FLOOR = 64


class Engine(Hookable):
    """Event kernel: virtual clock + priority queue + run loop.

    Parameters
    ----------
    max_events:
        Safety valve; :meth:`run` raises :class:`SimulationLimitError` after
        dispatching this many events.  Guards against accidental infinite
        event loops in user extensions.
    """

    def __init__(self, max_events: int = 200_000_000):
        super().__init__()
        self._queue: List[Tuple[float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._max_events = max_events
        self._paused = False
        self._dispatch_observer: Optional[
            Callable[[float, int, Event], None]] = None
        self._heartbeat: Optional[Callable[["Engine"], None]] = None
        self._heartbeat_every = 4096

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def dispatched_events(self) -> int:
        """Number of events dispatched so far (for performance reporting)."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._queue) - self._cancelled

    @property
    def total_cancelled(self) -> int:
        """Cumulative count of queued events that were cancelled.

        Unlike the internal compaction counter this never resets during a
        run — it is the churn metric the network fast path is measured
        against (see ``benchmarks/bench_to_json.py``).
        """
        return self._cancelled_total

    @property
    def compactions(self) -> int:
        """Number of heap rebuilds triggered by cancellation pressure."""
        return self._compactions

    def schedule(self, event: Event) -> Event:
        """Queue *event*; its time must not precede the current time."""
        if event.time < self._now:
            raise ValueError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        event._seq = self._seq
        event._engine = self
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event._seq, event))
        return event

    def schedule_bulk(self, events: List[Event]) -> None:
        """Queue many events in one call (validated like :meth:`schedule`).

        Sequence numbers are assigned in list order, so the dispatch
        order is bit-identical to calling :meth:`schedule` on each event
        in turn — ``(time, seq)`` is a total order and the heap's
        internal shape never affects pop order.  When the batch is large
        relative to the queue the events are appended and the heap
        rebuilt once (O(n + k) instead of O(k log n)) — the fast path
        for reschedule waves (collective flow reallocation) and bulk
        iteration instancing.
        """
        if not events:
            return
        now = self._now
        seq = self._seq
        entries = []
        for event in events:
            if event.time < now:
                raise ValueError(
                    f"cannot schedule event at {event.time} before now={now}"
                )
            if event.cancelled:
                raise ValueError("cannot schedule a cancelled event")
            event._seq = seq
            event._engine = self
            entries.append((event.time, seq, event))
            seq += 1
        self._seq = seq
        queue = self._queue
        if len(entries) > 8 and len(entries) * 4 >= len(queue):
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            for entry in entries:
                heapq.heappush(queue, entry)

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact once they dominate.

        Cancelled entries stay in the heap (cancellation is O(1)), but
        once they both exceed half the queue and reach the
        :data:`COMPACT_FLOOR` the heap is rebuilt without them —
        amortized O(1) per cancellation, long-running sweeps no longer
        accumulate dead entries, and small queues never churn through
        pointless rebuilds.
        """
        self._cancelled += 1
        self._cancelled_total += 1
        if (self._cancelled >= COMPACT_FLOOR
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        # One comprehension pass (C-speed) + one heapify.  Stale _engine
        # backrefs on the dropped entries are harmless: Event.cancel()
        # early-returns on already-cancelled events, which dropped
        # entries always are.
        self._queue = [entry for entry in self._queue
                       if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._compactions += 1

    def call_at(self, time: float, callback: Callable[[Event], None], payload=None) -> Event:
        """Schedule *callback* to run at absolute virtual *time*."""
        return self.schedule(CallbackEvent(time, callback, payload))

    def call_after(self, delay: float, callback: Callable[[Event], None], payload=None) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback, payload)

    def defer_pending(self, delay: float, exclude: Tuple[Event, ...] = ()) -> int:
        """Push every queued live event *delay* seconds into the future.

        This is the primitive behind global stalls (checkpoint pauses,
        failure rollback-and-replay): the relative order of all pending
        work is preserved exactly — each live entry moves from ``time`` to
        ``time + delay`` with its sequence number intact — so the deferred
        schedule replays identically, just later.  Events in *exclude*
        (e.g. the fault injector's own absolute-time injections) keep
        their original times.

        Returns the number of events deferred.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if delay == 0 or not self._queue:
            return 0
        skip = set(map(id, exclude))
        deferred = 0
        shifted = []
        for time, seq, event in self._queue:
            if not event.cancelled and id(event) not in skip:
                time += delay
                event.time = time
                deferred += 1
            shifted.append((time, seq, event))
        self._queue = shifted
        # A uniform shift preserves heap order, but exclusions may not.
        if skip:
            heapq.heapify(self._queue)
        return deferred

    def set_dispatch_observer(
            self, observer: Optional[Callable[[float, int, Event], None]]
    ) -> None:
        """Install a ``(time, seq, event)`` callback fired per dispatch.

        The observer sees each event's heap position (its timestamp and
        tie-breaking sequence number) *before* the event is handled —
        the instrumentation point of the determinism race detectors
        (:mod:`repro.analysis.verifier.races`).  At most one observer;
        ``None`` uninstalls.  Like the hook list, the observer is bound
        once at the top of :meth:`run`: install it before running.
        Costs nothing when unset (one bound-local check per loop setup).
        """
        self._dispatch_observer = observer

    def set_heartbeat(self, heartbeat: Optional[Callable[["Engine"], None]],
                      every: int = 4096) -> None:
        """Install a callback fired every *every* dispatched events.

        The heartbeat is the wall-clock escape hatch for otherwise
        uninterruptible runs: the sweep service's soft per-point deadline
        checks elapsed wall time from it and raises to stop the run
        cooperatively, keeping partial progress (``engine.now``,
        :attr:`dispatched_events`) attributable.  Exceptions raised by the
        heartbeat propagate out of :meth:`run`.  At most one heartbeat;
        ``None`` uninstalls.  Costs one predictable branch per dispatch
        when unset.
        """
        if every < 1:
            raise ValueError("heartbeat interval must be >= 1 event")
        self._heartbeat = heartbeat
        self._heartbeat_every = every

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in time order.

        Runs until the queue drains, or — when *until* is given — until the
        next event would fire after *until* (the clock is then advanced to
        *until*).  Returns the final virtual time.
        """
        self._paused = False
        heappop = heapq.heappop
        # self._hooks is mutated in place by accept/remove, so binding the
        # list keeps the emptiness check live while skipping two HookCtx
        # allocations per event on the (common) unobserved path.
        hooks = self._hooks
        observer = self._dispatch_observer
        heartbeat = self._heartbeat
        beat_countdown = self._heartbeat_every
        while self._queue and not self._paused:
            time, _seq, event = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heappop(self._queue)
            event._engine = None  # no longer queued; cancel() needs no note
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            self._dispatched += 1
            if self._dispatched > self._max_events:
                raise SimulationLimitError(
                    f"exceeded max_events={self._max_events}; "
                    "possible runaway event loop"
                )
            if heartbeat is not None:
                beat_countdown -= 1
                if beat_countdown <= 0:
                    beat_countdown = self._heartbeat_every
                    heartbeat(self)
            if observer is not None:
                observer(time, _seq, event)
            if hooks:
                self.invoke_hooks(HookCtx(HOOK_BEFORE_EVENT, self._now, event))
                event.handler.handle(event)
                self.invoke_hooks(HookCtx(HOOK_AFTER_EVENT, self._now, event))
            else:
                event.handler.handle(event)
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return self._now

    def pause(self) -> None:
        """Stop the run loop after the current event completes."""
        self._paused = True

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test reuse)."""
        for _, _, event in self._queue:
            event._engine = None
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._paused = False
