"""The event-driven simulation kernel.

The :class:`Engine` owns the virtual clock and the event queue.  Handlers
react to events and schedule more events; the engine repeatedly pops the
earliest event and dispatches it until the queue drains (or a limit is hit).

This mirrors the Akita Simulator Engine used by the original TrioSim: the
event-driven style lets the simulator "fast-forward unnecessary details" —
an operator that takes 3 ms is one event, not three million cycles.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.events import CallbackEvent, Event
from repro.engine.hooks import HookCtx, Hookable

#: Hook positions emitted by the engine.
HOOK_BEFORE_EVENT = "before_event"
HOOK_AFTER_EVENT = "after_event"


class SimulationLimitError(RuntimeError):
    """Raised when the engine exceeds its configured event budget."""


#: Compaction floor: cancelled entries must both dominate the queue AND
#: number at least this many before the heap is rebuilt.  Without the
#: floor, small queues churn — two live events and three cancelled ones
#: would trigger a (pointless) rebuild, and tight cancel/reschedule loops
#: on near-empty queues would re-heapify on almost every cancellation.
COMPACT_FLOOR = 64


class Engine(Hookable):
    """Event kernel: virtual clock + priority queue + run loop.

    Parameters
    ----------
    max_events:
        Safety valve; :meth:`run` raises :class:`SimulationLimitError` after
        dispatching this many events.  Guards against accidental infinite
        event loops in user extensions.
    """

    def __init__(self, max_events: int = 200_000_000):
        super().__init__()
        self._queue: List[Tuple[float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._max_events = max_events
        self._paused = False
        self._dispatch_observer: Optional[
            Callable[[float, int, Event], None]] = None
        self._heartbeat: Optional[Callable[["Engine"], None]] = None
        self._heartbeat_every = 4096
        self._profile: Optional[Dict[str, float]] = None
        # (id(event), orphaned seq) records for entries superseded by
        # mark_requeued.  Distinguishes legitimately-requeued stale
        # entries (skipped silently) from entries pushed around
        # Engine.schedule (dispatched, so the race detector can flag the
        # stamped-seq disagreement).
        self._requeue_stale: set = set()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def dispatched_events(self) -> int:
        """Number of events dispatched so far (for performance reporting)."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._queue) - self._cancelled

    @property
    def total_cancelled(self) -> int:
        """Cumulative count of queued events that were cancelled.

        Unlike the internal compaction counter this never resets during a
        run — it is the churn metric the network fast path is measured
        against (see ``benchmarks/bench_to_json.py``).
        """
        return self._cancelled_total

    @property
    def compactions(self) -> int:
        """Number of heap rebuilds triggered by cancellation pressure."""
        return self._compactions

    def schedule(self, event: Event) -> Event:
        """Queue *event*; its time must not precede the current time."""
        if event.time < self._now:
            raise ValueError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        event._seq = self._seq
        event._engine = self
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event._seq, event))
        return event

    def schedule_bulk(self, events: List[Event]) -> None:
        """Queue many events in one call (validated like :meth:`schedule`).

        Sequence numbers are assigned in list order, so the dispatch
        order is bit-identical to calling :meth:`schedule` on each event
        in turn — ``(time, seq)`` is a total order and the heap's
        internal shape never affects pop order.  When the batch is large
        relative to the queue the events are appended and the heap
        rebuilt once (O(n + k) instead of O(k log n)) — the fast path
        for reschedule waves (collective flow reallocation) and bulk
        iteration instancing.
        """
        if not events:
            return
        now = self._now
        seq = self._seq
        entries = []
        for event in events:
            if event.time < now:
                raise ValueError(
                    f"cannot schedule event at {event.time} before now={now}"
                )
            if event.cancelled:
                raise ValueError("cannot schedule a cancelled event")
            event._seq = seq
            event._engine = self
            entries.append((event.time, seq, event))
            seq += 1
        self._seq = seq
        queue = self._queue
        if len(entries) > 8 and len(entries) * 4 >= len(queue):
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            for entry in entries:
                heapq.heappush(queue, entry)

    def mark_requeued(self, event: Event) -> None:
        """Account for re-submitting a still-queued *event* at a new time.

        The cheap reschedule path for in-flight timers (network delivery
        events whose bandwidth share changed): instead of cancelling the
        event and allocating a replacement, the caller re-submits the
        *same* object through :meth:`schedule` / :meth:`schedule_bulk`,
        which stamps a fresh sequence number.  The old heap entry still
        carries the previous sequence number, so the run loop recognises
        it as stale (``entry seq != event._seq``) and discards it before
        the dispatch observer fires — the ``(time, seq)`` dispatch
        stream is bit-identical to the cancel-and-replace path, with no
        throwaway event object and no cancelled-flag churn.

        Call this *before* re-submitting.  The orphaned entry counts
        toward compaction pressure exactly like a cancellation.
        """
        if event._engine is self:
            self._requeue_stale.add((id(event), event._seq))
            self._note_cancelled()

    def reschedule(self, event: Event, time: float) -> Event:
        """Move a queued *event* to absolute *time* (see :meth:`mark_requeued`)."""
        self.mark_requeued(event)
        event.time = time
        return self.schedule(event)

    def _discard_stale(self, event: Event, seq: int) -> bool:
        """Consume the requeue record for a seq-mismatched heap entry.

        Returns True when the entry was orphaned by :meth:`mark_requeued`
        (skip it silently).  False means the entry's stamped sequence
        number disagrees for some *other* reason — an entry pushed
        around :meth:`schedule` — which must dispatch as it always has,
        so the race detector can flag it.
        """
        key = (id(event), seq)
        if key in self._requeue_stale:
            self._requeue_stale.discard(key)
            return True
        return False

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact once they dominate.

        Cancelled entries stay in the heap (cancellation is O(1)), but
        once they both exceed half the queue and reach the
        :data:`COMPACT_FLOOR` the heap is rebuilt without them —
        amortized O(1) per cancellation, long-running sweeps no longer
        accumulate dead entries, and small queues never churn through
        pointless rebuilds.
        """
        self._cancelled += 1
        self._cancelled_total += 1
        if (self._cancelled >= COMPACT_FLOOR
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        # One comprehension pass (C-speed) + one heapify, in place so the
        # run loop can keep a local binding of the queue list.  An entry
        # survives only if its event is live and was not orphaned by
        # :meth:`mark_requeued`.  The orphan check must be by record, not
        # by seq mismatch: between mark_requeued and the re-submit the
        # event still carries the orphaned entry's sequence number, and
        # keeping that entry while clearing its record would dispatch
        # the event twice once the re-submit lands.  Stale _engine
        # backrefs on dropped cancelled entries are harmless:
        # Event.cancel() early-returns on cancelled events.
        queue = self._queue
        stale = self._requeue_stale
        if stale:
            queue[:] = [entry for entry in queue
                        if not entry[2].cancelled
                        and (id(entry[2]), entry[1]) not in stale]
            stale.clear()
        else:
            queue[:] = [entry for entry in queue
                        if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled = 0
        self._compactions += 1

    def call_at(self, time: float, callback: Callable[[Event], None], payload=None) -> Event:
        """Schedule *callback* to run at absolute virtual *time*."""
        return self.schedule(CallbackEvent(time, callback, payload))

    def call_after(self, delay: float, callback: Callable[[Event], None], payload=None) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback, payload)

    def defer_pending(self, delay: float, exclude: Tuple[Event, ...] = ()) -> int:
        """Push every queued live event *delay* seconds into the future.

        This is the primitive behind global stalls (checkpoint pauses,
        failure rollback-and-replay): the relative order of all pending
        work is preserved exactly — each live entry moves from ``time`` to
        ``time + delay`` with its sequence number intact — so the deferred
        schedule replays identically, just later.  Events in *exclude*
        (e.g. the fault injector's own absolute-time injections) keep
        their original times.

        Returns the number of events deferred.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if delay == 0 or not self._queue:
            return 0
        skip = set(map(id, exclude))
        stale = self._requeue_stale
        deferred = 0
        shifted = []
        for time, seq, event in self._queue:
            # Requeue-stale entries are dead weight: the event's live
            # entry is shifted exactly once, under its current seq.
            if (not event.cancelled
                    and (event._seq == seq or (id(event), seq) not in stale)
                    and id(event) not in skip):
                time += delay
                event.time = time
                deferred += 1
            shifted.append((time, seq, event))
        self._queue[:] = shifted
        # A uniform shift preserves heap order, but exclusions may not.
        if skip:
            heapq.heapify(self._queue)
        return deferred

    def set_dispatch_observer(
            self, observer: Optional[Callable[[float, int, Event], None]]
    ) -> None:
        """Install a ``(time, seq, event)`` callback fired per dispatch.

        The observer sees each event's heap position (its timestamp and
        tie-breaking sequence number) *before* the event is handled —
        the instrumentation point of the determinism race detectors
        (:mod:`repro.analysis.verifier.races`).  At most one observer;
        ``None`` uninstalls.  Like the hook list, the observer is bound
        once at the top of :meth:`run`: install it before running.
        Costs nothing when unset (one bound-local check per loop setup).
        """
        self._dispatch_observer = observer

    def set_heartbeat(self, heartbeat: Optional[Callable[["Engine"], None]],
                      every: int = 4096) -> None:
        """Install a callback fired every *every* dispatched events.

        The heartbeat is the wall-clock escape hatch for otherwise
        uninterruptible runs: the sweep service's soft per-point deadline
        checks elapsed wall time from it and raises to stop the run
        cooperatively, keeping partial progress (``engine.now``,
        :attr:`dispatched_events`) attributable.  Exceptions raised by the
        heartbeat propagate out of :meth:`run`.  At most one heartbeat;
        ``None`` uninstalls.  Costs one predictable branch per dispatch
        when unset.
        """
        if every < 1:
            raise ValueError("heartbeat interval must be >= 1 event")
        self._heartbeat = heartbeat
        self._heartbeat_every = every

    def set_profile(self, sink: Optional[Dict[str, float]]) -> None:
        """Accumulate run-loop timing into *sink*; ``None`` disables.

        When a sink is installed :meth:`run` uses an instrumented loop
        that buckets wall time into ``queue_ops`` (heap peek/pop and
        bookkeeping), ``handler`` (event handler bodies, where the
        simulation actually runs) and ``hook_overhead`` (engine-level
        hook dispatch).  The buckets are *added* to the sink's existing
        values so repeated runs aggregate.  Instrumentation costs two
        clock reads per event — only install it for profiling runs.
        """
        self._profile = sink

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in time order.

        Runs until the queue drains, or — when *until* is given — until the
        next event would fire after *until* (the clock is then advanced to
        *until*).  Returns the final virtual time.
        """
        self._paused = False
        if self._profile is not None:
            return self._run_instrumented(until)
        if self._dispatch_observer is not None or self._heartbeat is not None:
            return self._run_observed(until)
        heappop = heapq.heappop
        queue = self._queue
        # self._hooks is mutated in place by accept/remove, so binding the
        # list keeps the emptiness check live while skipping two HookCtx
        # allocations per event on the (common) unobserved path.
        hooks = self._hooks
        max_events = self._max_events
        callback_lane = CallbackEvent
        while queue and not self._paused:
            entry = queue[0]
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                return until
            # Drain every entry sharing this timestamp in one inner pass:
            # the heap already yields them in sequence order, and events a
            # handler schedules *at* this timestamp carry higher sequence
            # numbers, so they surface here in the correct total order.
            while True:
                heappop(queue)
                event = entry[2]
                if not event.cancelled and (
                        event._seq == entry[1]
                        or not self._discard_stale(event, entry[1])):
                    self._now = time
                    event._engine = None  # dequeued; cancel() needs no note
                    self._dispatched += 1
                    if self._dispatched > max_events:
                        raise SimulationLimitError(
                            f"exceeded max_events={max_events}; "
                            "possible runaway event loop"
                        )
                    if hooks:
                        self.invoke_hooks(
                            HookCtx(HOOK_BEFORE_EVENT, time, event))
                        event.handler.handle(event)
                        self.invoke_hooks(
                            HookCtx(HOOK_AFTER_EVENT, time, event))
                    elif type(event) is callback_lane:
                        # Inlined fast lane: a CallbackEvent is its own
                        # handler, so skip the handler.handle indirection.
                        event._callback(event)
                    else:
                        event.handler.handle(event)
                    if self._paused:
                        break
                else:
                    # Cancelled, or a stale entry left behind by a
                    # requeue (seq mismatch) — never dispatched, never
                    # observed.
                    if event.cancelled and event._seq != entry[1]:
                        self._discard_stale(event, entry[1])
                    self._cancelled -= 1
                if not queue:
                    break
                entry = queue[0]
                if entry[0] != time:
                    break
        if until is not None and not queue:
            self._now = max(self._now, until)
        return self._now

    def _run_observed(self, until: Optional[float]) -> float:
        """Run-loop variant when a dispatch observer or heartbeat is set.

        Dispatch order is identical to :meth:`run`'s fast loop; this
        variant just keeps the per-event observer/heartbeat call sites
        out of the common path.
        """
        heappop = heapq.heappop
        queue = self._queue
        hooks = self._hooks
        observer = self._dispatch_observer
        heartbeat = self._heartbeat
        beat_countdown = self._heartbeat_every
        callback_lane = CallbackEvent
        while queue and not self._paused:
            time, seq, event = queue[0]
            if until is not None and time > until:
                self._now = until
                return until
            heappop(queue)
            if event.cancelled:
                if event._seq != seq:
                    self._discard_stale(event, seq)
                self._cancelled -= 1
                continue
            if event._seq != seq and self._discard_stale(event, seq):
                # Skipped before the observer: requeue-stale entries are
                # invisible to the dispatch stream.
                self._cancelled -= 1
                continue
            event._engine = None
            self._now = time
            self._dispatched += 1
            if self._dispatched > self._max_events:
                raise SimulationLimitError(
                    f"exceeded max_events={self._max_events}; "
                    "possible runaway event loop"
                )
            if heartbeat is not None:
                beat_countdown -= 1
                if beat_countdown <= 0:
                    beat_countdown = self._heartbeat_every
                    heartbeat(self)
            if observer is not None:
                observer(time, seq, event)
            if hooks:
                self.invoke_hooks(HookCtx(HOOK_BEFORE_EVENT, time, event))
                event.handler.handle(event)
                self.invoke_hooks(HookCtx(HOOK_AFTER_EVENT, time, event))
            elif type(event) is callback_lane:
                event._callback(event)
            else:
                event.handler.handle(event)
        if until is not None and not queue:
            self._now = max(self._now, until)
        return self._now

    def _run_instrumented(self, until: Optional[float]) -> float:
        """Fully-featured run loop that buckets time for the profiler.

        Same dispatch semantics as :meth:`_run_observed`; additionally
        accumulates ``queue_ops`` / ``handler`` / ``hook_overhead``
        seconds into the sink installed by :meth:`set_profile`.
        """
        profile = self._profile
        assert profile is not None
        heappop = heapq.heappop
        queue = self._queue
        hooks = self._hooks
        observer = self._dispatch_observer
        heartbeat = self._heartbeat
        beat_countdown = self._heartbeat_every
        queue_ops = profile.get("queue_ops", 0.0)
        handler_s = profile.get("handler", 0.0)
        hook_s = profile.get("hook_overhead", 0.0)
        try:
            while True:
                t0 = perf_counter()
                if not queue or self._paused:
                    queue_ops += perf_counter() - t0
                    break
                time, seq, event = queue[0]
                if until is not None and time > until:
                    self._now = until
                    queue_ops += perf_counter() - t0
                    return until
                heappop(queue)
                if event.cancelled or (
                        event._seq != seq
                        and self._discard_stale(event, seq)):
                    if event.cancelled and event._seq != seq:
                        self._discard_stale(event, seq)
                    self._cancelled -= 1
                    queue_ops += perf_counter() - t0
                    continue
                event._engine = None
                self._now = time
                self._dispatched += 1
                if self._dispatched > self._max_events:
                    raise SimulationLimitError(
                        f"exceeded max_events={self._max_events}; "
                        "possible runaway event loop"
                    )
                if heartbeat is not None:
                    beat_countdown -= 1
                    if beat_countdown <= 0:
                        beat_countdown = self._heartbeat_every
                        heartbeat(self)
                if observer is not None:
                    observer(time, seq, event)
                queue_ops += perf_counter() - t0
                if hooks:
                    t1 = perf_counter()
                    self.invoke_hooks(HookCtx(HOOK_BEFORE_EVENT, time, event))
                    t2 = perf_counter()
                    event.handler.handle(event)
                    t3 = perf_counter()
                    self.invoke_hooks(HookCtx(HOOK_AFTER_EVENT, time, event))
                    t4 = perf_counter()
                    hook_s += (t2 - t1) + (t4 - t3)
                    handler_s += t3 - t2
                else:
                    t1 = perf_counter()
                    event.handler.handle(event)
                    handler_s += perf_counter() - t1
        finally:
            profile["queue_ops"] = queue_ops
            profile["handler"] = handler_s
            profile["hook_overhead"] = hook_s
        if until is not None and not queue:
            self._now = max(self._now, until)
        return self._now

    def pause(self) -> None:
        """Stop the run loop after the current event completes."""
        self._paused = True

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test reuse)."""
        for _, _, event in self._queue:
            event._engine = None
        self._queue.clear()
        self._requeue_stale.clear()
        self._now = 0.0
        self._seq = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._paused = False
