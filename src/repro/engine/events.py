"""Events and event handlers for the simulation engine.

An event is a piece of work that happens at a specific virtual time.  The
engine orders events by time (ties broken by insertion order, making runs
deterministic) and dispatches each one to its handler.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable


class Event:
    """A unit of future work in virtual time.

    Parameters
    ----------
    time:
        The virtual time (seconds) at which the event fires.
    handler:
        The object whose :meth:`EventHandler.handle` is invoked.
    payload:
        Optional arbitrary data carried by the event.
    """

    __slots__ = ("time", "handler", "payload", "cancelled", "_seq", "_engine")

    def __init__(self, time: float, handler: "EventHandler", payload=None):
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = float(time)
        self.handler = handler
        self.payload = payload
        self.cancelled = False
        self._seq = -1  # assigned by the engine at schedule time
        self._engine = None  # back-reference while queued, for accounting

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is O(1); the event stays in the queue but is discarded
        at dispatch time.  This is how in-flight network deliveries are
        rescheduled when bandwidth shares change.  The owning engine is
        notified so it can compact its queue once cancelled entries
        dominate (long sweeps would otherwise bloat memory).
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} handler={self.handler!r}{state}>"


@runtime_checkable
class EventHandler(Protocol):
    """Anything that can be the target of an :class:`Event`."""

    def handle(self, event: Event) -> None:
        """React to *event* firing at its scheduled time."""


class CallbackEvent(Event):
    """An event that invokes a plain callable instead of a handler object.

    Convenient for one-off continuations::

        engine.schedule(CallbackEvent(t, lambda ev: do_something()))

    The event is its own handler: hot paths (flow delivery timers) create
    millions of these, and folding the adapter object into the event
    halves the allocations per scheduled callback.
    """

    __slots__ = ("_callback",)

    def __init__(self, time: float, callback: Callable[[Event], None], payload=None):
        # Event.__init__ inlined: hot paths allocate one of these per
        # dispatched event, and the extra constructor frame is measurable.
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = float(time)
        self.handler = self
        self.payload = payload
        self.cancelled = False
        self._seq = -1
        self._engine = None
        self._callback = callback

    def handle(self, event: Event) -> None:
        self._callback(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Event.__repr__ prints handler!r, which for a self-handling
        # event would recurse forever.
        state = " cancelled" if self.cancelled else ""
        return f"<CallbackEvent t={self.time:.9f} cb={self._callback!r}{state}>"
