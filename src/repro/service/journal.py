"""Crash-safe write-ahead journal for the sweep service.

The journal is an append-only, fsync'd JSONL file (``journal.jsonl`` in a
directory the caller owns) recording the lifecycle of one sweep: a
``begin`` record fingerprinting the work (trace digest + per-point cache
keys + the timeline flag), one ``dispatch`` record per point handed to a
worker, and one terminal record per point — ``done`` (carrying the full
serialized result, so replay needs nothing but the journal), ``fail``
(the structured error), or ``interrupted``.  ``repro sweep --journal DIR
--resume`` replays completed points from the journal and re-dispatches
only the remainder, bit-identically to an uninterrupted run (results
round-trip through JSON exactly; see ``docs/resilience.md``).

Durability model:

* **Torn-write tolerance.**  Every record is one line, written and
  fsync'd atomically from the appender's point of view — but SIGKILL can
  still land mid-``write``.  :meth:`SweepJournal.read` therefore drops
  any line that does not parse as JSON (counting it in
  ``JournalState.torn_lines``); at most the final record of a killed
  sweep is lost, and that record's point simply re-runs on resume.
* **Multi-run scoping.**  A fresh (non-resume) sweep pointed at an
  existing journal directory appends a new ``begin`` record rather than
  truncating the file.  Every recovery view
  (:attr:`JournalState.completed`, ``failed``, ``in_flight``, the
  fingerprint, the SV002 runtime scan) is scoped to the records from the
  last ``begin`` onward, so an earlier run's results are never replayed
  into a later sweep; the runner additionally refuses to replay any
  ``done`` record whose point key does not match the expected one.
* **Fingerprint pinning.**  A journal written for a different spec,
  trace, or point order must never be replayed into the wrong sweep:
  :func:`check_resume` compares fingerprints and emits lint rule
  ``SV001`` (error) on mismatch — the runner refuses to resume.  Rule
  ``SV002`` (warning) flags a configured hard deadline shorter than the
  slowest observed point runtime in the journal, i.e. a resume that is
  likely to convert pending points into ``PointTimeout`` outcomes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.analysis.findings import Finding, Report
from repro.analysis.registry import DEFAULT_REGISTRY, load_rules

#: Bumped whenever the journal record format changes; part of the sweep
#: fingerprint, so a journal written by an incompatible build is rejected
#: by SV001 instead of being half-understood.
JOURNAL_SCHEMA_VERSION = 1

#: File name of the journal inside its directory.
JOURNAL_NAME = "journal.jsonl"


class JournalMismatchError(RuntimeError):
    """A resume was attempted against a journal for different work.

    Carries the :class:`~repro.analysis.findings.Report` with the
    ``SV001`` finding so callers (the CLI) can render it properly.
    """

    def __init__(self, report: Report):
        lines = [str(f) for f in report.errors] or [str(f) for f in report]
        super().__init__("journal does not match this sweep:\n"
                         + "\n".join(lines))
        self.report = report


def point_fingerprint(trace_key: str, config, record_timeline: bool) -> str:
    """Journal identity of one sweep point.

    Serializable configs reuse the result cache's content-addressed key
    (:meth:`ResultCache.point_key`), so journal, cache, and outcome dicts
    all agree on what a point *is*.  Non-serializable configs (a
    ``network_factory`` callable) cannot be content-addressed — they get
    a positional marker and are re-run, never replayed, on resume.
    """
    if config.is_serializable:
        from repro.service.cache import ResultCache

        return ResultCache.point_key(trace_key, config, record_timeline)
    return "unserializable"


def sweep_fingerprint(trace_key: str, point_keys: Sequence[str],
                      record_timeline: bool) -> str:
    """Content digest of an entire sweep: trace, points, order, flags."""
    canonical = json.dumps(
        {
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "trace": trace_key,
            "points": list(point_keys),
            "timeline": bool(record_timeline),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class JournalState:
    """Parsed journal contents, indexed for resume decisions."""

    records: List[dict] = field(default_factory=list)
    #: Lines dropped because they did not parse (torn final append).
    torn_lines: int = 0

    @property
    def run_records(self) -> List[dict]:
        """Records of the current run: from the last ``begin`` onward.

        A journal file accumulates runs — a fresh (non-resume) sweep
        appends a new ``begin`` record rather than truncating the file —
        so every recovery view scopes itself to the latest run.  Without
        this, ``done``/``fail`` records from an earlier (possibly
        different) sweep would leak into resume decisions and be
        silently replayed into the wrong sweep at matching indices.
        ``resume`` markers continue a run and never reset the scope.
        """
        start = 0
        for i, record in enumerate(self.records):
            if record.get("t") == "begin":
                start = i
        return self.records[start:]

    @property
    def fingerprint(self) -> Optional[str]:
        """The sweep fingerprint of the most recent begin/resume record."""
        for record in reversed(self.run_records):
            if record.get("t") in ("begin", "resume"):
                return record.get("fingerprint")
        return None

    @property
    def completed(self) -> Dict[int, dict]:
        """Latest ``done`` record per point index (current run only)."""
        done: Dict[int, dict] = {}
        for record in self.run_records:
            if record.get("t") == "done":
                done[record["i"]] = record
        return done

    @property
    def failed(self) -> Dict[int, dict]:
        """Latest ``fail`` record per point index (superseded by done)."""
        failed: Dict[int, dict] = {}
        completed = self.completed
        for record in self.run_records:
            if record.get("t") == "fail" and record["i"] not in completed:
                failed[record["i"]] = record
        return failed

    @property
    def interrupted(self) -> Set[int]:
        """Indices marked interrupted and never completed afterwards."""
        completed = self.completed
        return {r["i"] for r in self.run_records
                if r.get("t") == "interrupted" and r["i"] not in completed}

    @property
    def in_flight(self) -> Set[int]:
        """Dispatched points with no terminal record: the crash victims."""
        terminal = set(self.completed)
        terminal.update(r["i"] for r in self.run_records
                        if r.get("t") in ("fail", "interrupted"))
        return {r["i"] for r in self.run_records
                if r.get("t") == "dispatch"} - terminal


class SweepJournal:
    """Append-only fsync'd JSONL journal in a directory.

    Parameters
    ----------
    root:
        Directory holding ``journal.jsonl``; created on first append.
    fsync:
        Force every record to stable storage before :meth:`append`
        returns (on by default — the point of a write-ahead journal).
        Tests may disable it for speed.
    """

    def __init__(self, root: Union[str, Path], fsync: bool = True):
        self.root = Path(root)
        self.fsync = fsync
        self._handle = None

    @property
    def path(self) -> Path:
        return self.root / JOURNAL_NAME

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (one JSON line + fsync)."""
        if self._handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- record constructors -------------------------------------------
    def begin(self, fingerprint: str, trace_key: str, total: int,
              record_timeline: bool) -> None:
        self.append({"t": "begin", "v": JOURNAL_SCHEMA_VERSION,
                     "fingerprint": fingerprint, "trace": trace_key,
                     "total": total, "timeline": bool(record_timeline)})

    def resume_marker(self, fingerprint: str, replayed: int,
                      remaining: int) -> None:
        self.append({"t": "resume", "v": JOURNAL_SCHEMA_VERSION,
                     "fingerprint": fingerprint, "replayed": replayed,
                     "remaining": remaining})

    def dispatch(self, index: int, key: str, label: str = "") -> None:
        self.append({"t": "dispatch", "i": index, "key": key,
                     "label": label})

    def done(self, index: int, key: str, result: dict,
             cached: bool = False) -> None:
        self.append({"t": "done", "i": index, "key": key,
                     "wall": result.get("wall_time", 0.0),
                     "cached": bool(cached), "result": result})

    def fail(self, index: int, key: str, error: dict, kind: str) -> None:
        self.append({"t": "fail", "i": index, "key": key, "kind": kind,
                     "error": error})

    def interrupt(self, index: int) -> None:
        self.append({"t": "interrupted", "i": index})

    def end(self, detail: dict) -> None:
        self.append({"t": "end", "metrics": detail})

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def read(self) -> JournalState:
        """Parse the journal, dropping torn (unparsable) lines.

        SIGKILL mid-append leaves at most one truncated line — by
        construction the last one; it is counted in ``torn_lines`` and
        its point simply re-runs on resume.  Any other unparsable line is
        dropped the same way: recovery is tolerant, never fatal.
        """
        state = JournalState()
        if not self.exists():
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    state.torn_lines += 1
                    continue
                if isinstance(record, dict):
                    state.records.append(record)
                else:
                    state.torn_lines += 1
        return state


# ----------------------------------------------------------------------
# Resume admission (SV-series rules)
# ----------------------------------------------------------------------
def _finding(rule_id: str, message: str, location: str = "") -> Finding:
    load_rules()
    rule = DEFAULT_REGISTRY.get(rule_id)
    return Finding(rule=rule.id, name=rule.name, severity=rule.severity,
                   message=message, location=location)


def check_resume(state: JournalState, fingerprint: str,
                 deadline_hard: Optional[float] = None) -> Report:
    """Admission check for resuming *fingerprint*'s sweep from *state*.

    * ``SV001`` (error): the journal was written for a different sweep —
      different spec, trace, point set/order, or journal schema.  The
      runner refuses to resume on this finding.
    * ``SV002`` (warning): the configured hard deadline is shorter than
      the slowest observed point runtime in the journal, so resumed
      pending points of the same runtime class are likely to be cut down
      as ``PointTimeout`` instead of completing.
    """
    report = Report()
    recorded = state.fingerprint
    if recorded is None:
        report.add(_finding(
            "SV001",
            "journal has no begin record (empty or fully torn); "
            "cannot prove it belongs to this sweep",
        ))
        return report
    if recorded != fingerprint:
        report.add(_finding(
            "SV001",
            f"journal fingerprint {recorded[:12]}… does not match this "
            f"sweep's {fingerprint[:12]}… — it was written for a "
            "different spec, trace, or point order",
        ))
        return report
    if deadline_hard is not None:
        observed = [r.get("wall", 0.0) for r in state.completed.values()
                    if not r.get("cached")]
        slowest = max(observed, default=0.0)
        if slowest > deadline_hard:
            report.add(_finding(
                "SV002",
                f"hard deadline {deadline_hard:g}s is below the slowest "
                f"observed point runtime {slowest:g}s in this journal; "
                "pending points of that runtime class will likely time "
                "out instead of completing",
            ))
    return report
