"""Low-overhead process-boundary transport for the sweep service.

Two independent layers, composable:

* **Out-of-band pickling** — :func:`pack` serializes with pickle
  protocol 5 and collects every :class:`pickle.PickleBuffer` the
  serializer emits (numpy arrays, ``bytes``-like payloads) as raw frames
  *outside* the pickle stream, concatenated into one length-prefixed
  blob.  :func:`unpack` hands the receiving pickler zero-copy
  ``memoryview`` slices of that blob, so a numpy column crosses the
  process boundary as one memcpy instead of being re-encoded
  element-by-element inside the pickle stream.

* **Columnar traces** — :func:`columnize_trace` converts the serialized
  trace schema (lists of per-operator/per-tensor dicts, the JSON form)
  into a struct-of-arrays wire form: numeric columns become numpy
  arrays (which the layer above ships out-of-band), strings stay as
  plain lists.  :func:`decolumnize_trace` restores the exact original
  dict — ``decolumnize_trace(columnize_trace(d)) == d`` — so the worker
  still feeds :meth:`Trace.from_dict` and its schema validation.

The sweep runner packs the per-sweep trace table once per pool build
(the dominant transfer: every worker receives every prepared trace at
initialization) and packs point payloads in chunks; both sides fall
back transparently when handed un-packed objects, so in-process runs
and tests that call the worker functions directly are unaffected.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List

import numpy as np

#: Wire magic for a framed protocol-5 blob (versioned: bump on layout
#: change so a stale peer fails loudly instead of mis-parsing).
MAGIC = b"RTP1"

_HEADER = struct.Struct("<4sI")   # magic, frame count
_LENGTH = struct.Struct("<Q")     # per-frame byte length

#: Marker key identifying a columnized trace dict on the wire.
TRACE_COLUMNS_KEY = "__trace_columns__"


class TransportError(ValueError):
    """A blob does not follow the framed protocol-5 layout."""


# ----------------------------------------------------------------------
# Framed protocol-5 pickling
# ----------------------------------------------------------------------
def pack(obj: Any) -> bytes:
    """Serialize *obj* into one framed protocol-5 blob.

    Layout: header (magic + frame count), frame lengths, then the
    frames — frame 0 is the pickle stream, frames 1..n the out-of-band
    buffers in emission order.
    """
    buffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    frames: List[bytes] = [head]
    for buf in buffers:
        # raw() requires a contiguous exporter; the numpy columns built
        # by columnize_trace always are.  A non-contiguous buffer (rare:
        # a strided array view) is materialized once here, at pack time.
        try:
            frames.append(buf.raw().tobytes())
        except BufferError:
            frames.append(memoryview(buf).tobytes())
    parts = [_HEADER.pack(MAGIC, len(frames))]
    parts.extend(_LENGTH.pack(len(frame)) for frame in frames)
    parts.extend(frames)
    return b"".join(parts)


def unpack(blob) -> Any:
    """Deserialize a :func:`pack`'d blob (zero-copy buffer hand-off)."""
    view = memoryview(blob)
    if len(view) < _HEADER.size:
        raise TransportError("blob shorter than transport header")
    magic, count = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise TransportError(
            f"bad transport magic {magic!r} (expected {MAGIC!r})")
    offset = _HEADER.size
    lengths = []
    for _ in range(count):
        (length,) = _LENGTH.unpack_from(view, offset)
        lengths.append(length)
        offset += _LENGTH.size
    frames = []
    for length in lengths:
        frames.append(view[offset:offset + length])
        offset += length
    if not frames:
        raise TransportError("blob carries no pickle frame")
    return pickle.loads(frames[0], buffers=frames[1:])


def is_packed(obj) -> bool:
    """Whether *obj* looks like a :func:`pack`'d blob."""
    return (isinstance(obj, (bytes, bytearray, memoryview))
            and bytes(memoryview(obj)[:4]) == MAGIC)


# ----------------------------------------------------------------------
# Columnar trace wire form
# ----------------------------------------------------------------------
def _ragged(rows) -> tuple:
    """Flatten a list of int lists into (flat, offsets) numpy columns."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        offsets[i + 1] = offsets[i] + len(row)
    flat = np.fromiter(
        (v for row in rows for v in row), dtype=np.int64,
        count=int(offsets[-1]))
    return flat, offsets


def _unragged(flat: np.ndarray, offsets: np.ndarray) -> List[List[int]]:
    flat_list = flat.tolist()
    bounds = offsets.tolist()
    return [flat_list[bounds[i]:bounds[i + 1]]
            for i in range(len(bounds) - 1)]


def columnize_trace(data: Dict[str, Any]) -> Dict[str, Any]:
    """The struct-of-arrays wire form of a serialized trace dict.

    Numeric per-row fields become numpy columns (shipped out-of-band by
    :func:`pack`); strings stay as lists.  The transform is lossless:
    :func:`decolumnize_trace` reproduces the input dict exactly.
    """
    tensors = data["tensors"]
    operators = data["operators"]
    dims_flat, dims_off = _ragged([t["dims"] for t in tensors])
    in_flat, in_off = _ragged([op["inputs"] for op in operators])
    out_flat, out_off = _ragged([op["outputs"] for op in operators])
    return {
        TRACE_COLUMNS_KEY: 1,
        "format_version": data["format_version"],
        "model_name": data["model_name"],
        "gpu_name": data["gpu_name"],
        "batch_size": data["batch_size"],
        "seq_len": data["seq_len"],
        "t_id": np.array([t["id"] for t in tensors], dtype=np.int64),
        "t_dims_flat": dims_flat,
        "t_dims_off": dims_off,
        "t_dtype": [t["dtype"] for t in tensors],
        "t_category": [t["category"] for t in tensors],
        "t_nbytes": np.array([t["nbytes"] for t in tensors],
                             dtype=np.int64),
        "o_name": [op["name"] for op in operators],
        "o_kind": [op["kind"] for op in operators],
        "o_layer": [op["layer"] for op in operators],
        "o_phase": [op["phase"] for op in operators],
        "o_duration": np.array([op["duration"] for op in operators],
                               dtype=np.float64),
        "o_flops": np.array([op["flops"] for op in operators],
                            dtype=np.float64),
        "o_in_flat": in_flat,
        "o_in_off": in_off,
        "o_out_flat": out_flat,
        "o_out_off": out_off,
    }


def decolumnize_trace(cols: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the plain serialized trace dict from its columnar form.

    ``.tolist()`` materializes native Python ints/floats, so the result
    passes :func:`repro.trace.trace.validate_trace_dict` unchanged.
    """
    ids = cols["t_id"].tolist()
    dims = _unragged(cols["t_dims_flat"], cols["t_dims_off"])
    nbytes = cols["t_nbytes"].tolist()
    tensors = [
        {"id": ids[i], "dims": dims[i], "dtype": cols["t_dtype"][i],
         "category": cols["t_category"][i], "nbytes": nbytes[i]}
        for i in range(len(ids))
    ]
    durations = cols["o_duration"].tolist()
    flops = cols["o_flops"].tolist()
    inputs = _unragged(cols["o_in_flat"], cols["o_in_off"])
    outputs = _unragged(cols["o_out_flat"], cols["o_out_off"])
    operators = [
        {"name": cols["o_name"][i], "kind": cols["o_kind"][i],
         "layer": cols["o_layer"][i], "phase": cols["o_phase"][i],
         "duration": durations[i], "flops": flops[i],
         "inputs": inputs[i], "outputs": outputs[i]}
        for i in range(len(durations))
    ]
    return {
        "format_version": cols["format_version"],
        "model_name": cols["model_name"],
        "gpu_name": cols["gpu_name"],
        "batch_size": cols["batch_size"],
        "seq_len": cols["seq_len"],
        "tensors": tensors,
        "operators": operators,
    }


def pack_traces(trace_dicts: Dict[str, Dict[str, Any]]) -> bytes:
    """Pack a sweep's prepared-trace table for the pool initializer."""
    return pack({key: columnize_trace(d) for key, d in trace_dicts.items()})


def unpack_traces(blob) -> Dict[str, Dict[str, Any]]:
    """Inverse of :func:`pack_traces` — plain trace dicts, keyed alike."""
    return {key: decolumnize_trace(cols)
            for key, cols in unpack(blob).items()}
