"""The sweep service: parallel, cached design-space exploration.

Built on the serializable config/result API (:meth:`SimulationConfig.to_dict`
/ :meth:`SimulationResult.to_json`), the service turns TrioSim from a
one-point simulator into a sweep engine: fan configs over worker processes,
cache every result by content, dedup shared preparation work, and keep
going when individual points fail.
"""

from repro.core.plan import PlanCache
from repro.service.cache import ResultCache, trace_digest
from repro.service.journal import (
    JournalMismatchError,
    JournalState,
    SweepJournal,
    check_resume,
    sweep_fingerprint,
)
from repro.service.runner import (
    HOOK_SWEEP_END,
    HOOK_SWEEP_POINT,
    HOOK_SWEEP_START,
    CircuitBreaker,
    SweepError,
    SweepMetrics,
    SweepOutcome,
    SweepPointError,
    SweepRunner,
)
from repro.service.spec import SweepSpec
from repro.service.worker import PointSoftTimeoutError, PointTimeoutError

__all__ = [
    "HOOK_SWEEP_END",
    "HOOK_SWEEP_POINT",
    "HOOK_SWEEP_START",
    "CircuitBreaker",
    "JournalMismatchError",
    "JournalState",
    "PlanCache",
    "PointSoftTimeoutError",
    "PointTimeoutError",
    "ResultCache",
    "SweepError",
    "SweepJournal",
    "SweepMetrics",
    "SweepOutcome",
    "SweepPointError",
    "SweepRunner",
    "SweepSpec",
    "check_resume",
    "sweep_fingerprint",
    "trace_digest",
]
