"""Sweep-point execution, shared by worker processes and in-process runs.

A worker process is seeded once (via the pool initializer) with every
prepared trace of the sweep, keyed by trace digest.  Within the process,
the parsed :class:`Trace` and the fitted performance model are memoized per
``(trace, perf_model)`` — the expensive shared work (piecewise fits, Li's
Model regression) happens once per process, not once per sweep point.

Per-point timeouts use ``SIGALRM`` so a runaway simulation inside a worker
is interrupted and reported as a structured error instead of hanging the
pool slot forever.  On platforms (or threads) without ``SIGALRM`` a
thread-based watchdog takes over: a daemon timer injects
:class:`PointTimeoutError` into the simulating thread with
``PyThreadState_SetAsyncExc``, so the deadline still fires instead of
silently degrading to "no timeout".
"""

from __future__ import annotations

import ctypes
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.simulator import TrioSim
from repro.extrapolator.optime import OpTimeModel
from repro.service import transport
from repro.trace.trace import Trace

#: Engine events between soft-deadline wall-clock checks.  Small enough
#: that a stuck-but-dispatching run is caught within milliseconds, large
#: enough that ``time.monotonic()`` stays invisible in profiles.
SOFT_DEADLINE_EVERY = 256

#: Error ``kind`` reported for any deadline overrun (soft or hard) —
#: the sweep failure taxonomy's name for it (see ``docs/resilience.md``).
TIMEOUT_KIND = "PointTimeout"


class PointTimeoutError(Exception):
    """A sweep point exceeded its per-point wall-clock budget."""

    #: Partial progress at expiry (events, simulated_time); the hard
    #: deadline can't capture any, the soft one fills it in.
    detail: dict = {}


class PointSoftTimeoutError(PointTimeoutError):
    """Cooperative expiry: the engine heartbeat saw the budget pass.

    Unlike the hard deadline (``SIGALRM`` / watchdog injection, which can
    land anywhere), the soft deadline raises from a known point in the
    engine loop, so it can report partial progress: how many events were
    dispatched and how far virtual time advanced before the stop.
    """

    def __init__(self, message: str, detail: Optional[dict] = None):
        super().__init__(message)
        self.detail = dict(detail or {})


def soft_deadline_heartbeat(seconds: float):
    """Engine heartbeat enforcing a cooperative *seconds* budget.

    The wall clock starts when the closure is built (just before
    ``TrioSim.run``), and every :data:`SOFT_DEADLINE_EVERY` events the
    heartbeat compares elapsed time against the budget, raising
    :class:`PointSoftTimeoutError` with the partial progress snapshot
    once exceeded.
    """
    start = time.monotonic()
    budget = float(seconds)

    def _beat(engine) -> None:
        elapsed = time.monotonic() - start
        if elapsed > budget:
            raise PointSoftTimeoutError(
                f"sweep point exceeded {budget}s soft deadline "
                f"after {elapsed:.2f}s",
                detail={
                    "elapsed": elapsed,
                    "events": engine.dispatched_events,
                    "simulated_time": engine.now,
                },
            )

    return _beat


def error_record(exc: BaseException) -> dict:
    """The process-boundary error dict for *exc*.

    Normalizes every deadline flavour (hard ``PointTimeoutError``, soft
    subclass) to the taxonomy kind ``PointTimeout`` and attaches the
    partial-progress ``detail`` when the exception carries one.
    """
    kind = type(exc).__name__
    if isinstance(exc, PointTimeoutError):
        kind = TIMEOUT_KIND
    record = {
        "kind": kind,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }
    detail = getattr(exc, "detail", None)
    if detail:
        record["detail"] = dict(detail)
    return record


class _Watchdog:
    """Thread-based deadline for contexts where ``SIGALRM`` can't deliver.

    A daemon :class:`threading.Timer` injects :class:`PointTimeoutError`
    into the watched thread via ``PyThreadState_SetAsyncExc`` — the
    asynchronous-exception hook the interpreter checks between bytecodes.
    The injection is best-effort (a thread blocked in a long C call won't
    see it until it returns), which matches what ``SIGALRM`` guarantees
    anyway.  :meth:`cancel` takes a lock shared with the expiry path so a
    body that finishes just as the timer fires can't be interrupted after
    it already returned.
    """

    def __init__(self, seconds: float):
        self._target = threading.get_ident()
        self._lock = threading.Lock()
        self._done = False
        self._timer = threading.Timer(seconds, self._expire)
        self._timer.daemon = True

    def start(self) -> "_Watchdog":
        self._timer.start()
        return self

    def _expire(self) -> None:
        with self._lock:
            if self._done:
                return
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(self._target),
                ctypes.py_object(PointTimeoutError),
            )

    def cancel(self) -> None:
        with self._lock:
            self._done = True
        self._timer.cancel()


@contextmanager
def deadline(seconds: Optional[float]):
    """Raise :class:`PointTimeoutError` if the body runs past *seconds*.

    Uses ``SIGALRM`` on the main thread of platforms that have it; falls
    back to a :class:`_Watchdog` thread everywhere else (worker threads,
    platforms without ``SIGALRM``), so the budget always arms.  No-op only
    when *seconds* is falsy.
    """
    if not seconds:
        yield
        return
    alarm_usable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not alarm_usable:
        watchdog = _Watchdog(float(seconds)).start()
        try:
            yield
        finally:
            watchdog.cancel()
        return

    def _expired(signum, frame):
        raise PointTimeoutError(f"sweep point exceeded {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Per-process shared state
# ----------------------------------------------------------------------

#: Serialized traces this worker may simulate, keyed by trace digest.
_TRACE_DICTS: Dict[str, dict] = {}

#: Parsed traces and fitted operator-time models, memoized per process.
_PARSED: Dict[str, Trace] = {}
_OP_TIMES: Dict[Tuple[str, str], OpTimeModel] = {}

#: This worker's extrapolation-plan cache, or ``None`` when disabled.
_PLAN_CACHE: Optional[PlanCache] = None


def init_worker(trace_dicts,
                plan_mode: Optional[str] = "") -> None:
    """Pool initializer: receive every prepared trace exactly once.

    *trace_dicts* is either a plain ``{gpu_key: trace dict}`` mapping or
    a :func:`repro.service.transport.pack_traces` blob — the runner
    ships the latter (framed protocol-5, numeric trace columns as
    out-of-band buffers) so the per-worker copy of every prepared trace
    costs a handful of memcpys instead of a deep pickle of nested
    dicts.

    *plan_mode* configures plan caching in this process: ``None``
    disables it, ``""`` (the default) gives the worker a private
    in-memory :class:`PlanCache`, and any other string is a directory a
    disk-backed cache shares with the parent and sibling workers — the
    parent pre-builds each distinct plan there, so workers only ever
    load.
    """
    global _PLAN_CACHE
    if transport.is_packed(trace_dicts):
        trace_dicts = transport.unpack_traces(trace_dicts)
    _TRACE_DICTS.clear()
    _TRACE_DICTS.update(trace_dicts)
    _PARSED.clear()
    _OP_TIMES.clear()
    if plan_mode is None:
        _PLAN_CACHE = None
    elif plan_mode == "":
        _PLAN_CACHE = PlanCache()
    else:
        _PLAN_CACHE = PlanCache(root=plan_mode)


def shared_op_time(trace: Trace, perf_model: str,
                   memo: Dict[Tuple[str, str], OpTimeModel],
                   trace_key: str) -> OpTimeModel:
    """The memoized :class:`OpTimeModel` for ``(trace, perf_model)``.

    Fitting happens at most once per *memo* (one per worker process, one
    per in-process runner); the piecewise model's throughput curves are the
    expensive part this dedups.
    """
    key = (trace_key, perf_model)
    op_time = memo.get(key)
    if op_time is None:
        fitted = None
        if perf_model == "piecewise":
            from repro.perfmodel.piecewise import PiecewiseThroughputModel

            fitted = PiecewiseThroughputModel.fit(trace)
        op_time = OpTimeModel(trace, fitted)
        memo[key] = op_time
    return op_time


def simulate_point(trace: Trace, config: SimulationConfig,
                   record_timeline: bool, timeout: Optional[float],
                   op_time: Optional[OpTimeModel] = None,
                   sanitize: bool = False,
                   sanitizer_sink: Optional[list] = None,
                   allow_chaos: bool = False,
                   plan_cache: Optional[PlanCache] = None,
                   verify=False,
                   deadline_soft: Optional[float] = None):
    """Run one sweep point (optionally under a deadline).

    With ``sanitize``, runtime sanitizer findings are appended to
    *sanitizer_sink* as dicts (the process-boundary form); ``verify``
    findings — determinism races and verifier warnings — ride the same
    sink, distinguishable by their ``RC``/``DV`` rule ids.  ``verify``
    may be the string ``"races"`` to run only the dynamic tier (the
    sweep runner statically verifies each distinct plan pre-dispatch).
    ``allow_chaos`` arms ``chaos_kill_at`` fault specs; worker processes
    are sacrificial, so :func:`run_point` passes ``True``, while
    in-process runs keep the default and such specs raise instead.
    *plan_cache* shares extrapolation plans across points that differ
    only in network/topology/fault parameters.  *deadline_soft* arms the
    cooperative engine-heartbeat budget (seconds) in addition to the hard
    *timeout*; the explicit argument wins over ``config.deadline_soft``.
    """
    soft = deadline_soft if deadline_soft is not None else config.deadline_soft
    heartbeat = soft_deadline_heartbeat(soft) if soft else None
    with deadline(timeout):
        sim = TrioSim(trace, config, record_timeline=record_timeline,
                      op_time=op_time, sanitize=sanitize,
                      allow_chaos=allow_chaos, plan_cache=plan_cache,
                      verify=verify, heartbeat=heartbeat,
                      heartbeat_every=SOFT_DEADLINE_EVERY)
        result = sim.run()
        if sanitizer_sink is not None and sim.sanitizer_report is not None:
            sanitizer_sink.extend(sim.sanitizer_report.to_dicts())
        if sanitizer_sink is not None and sim.verify_report is not None:
            sanitizer_sink.extend(sim.verify_report.to_dicts())
        return result


def run_point(payload: dict) -> dict:
    """Process-pool entry point: simulate one serialized sweep point.

    Returns ``{"ok": True, "result": <result dict>}`` on success or
    ``{"ok": False, "error": {kind, message, traceback}}`` on any failure,
    so a failing config degrades to an error record instead of poisoning
    the pool.
    """
    try:
        trace_key = payload["trace_key"]
        trace = _PARSED.get(trace_key)
        if trace is None:
            trace = Trace.from_dict(_TRACE_DICTS[trace_key])
            _PARSED[trace_key] = trace
        config = SimulationConfig.from_dict(payload["config"])
        op_time = shared_op_time(trace, config.perf_model, _OP_TIMES,
                                 trace_key)
        sanitizer_findings: list = []
        result = simulate_point(
            trace, config, payload["record_timeline"], payload["timeout"],
            op_time=op_time, sanitize=payload.get("sanitize", False),
            sanitizer_sink=sanitizer_findings, allow_chaos=True,
            plan_cache=_PLAN_CACHE, verify=payload.get("verify", False),
            deadline_soft=payload.get("deadline_soft"),
        )
        return {"ok": True, "result": result.to_dict(),
                "sanitizer": sanitizer_findings}
    except Exception as exc:
        return {"ok": False, "error": error_record(exc)}


def run_chunk(payloads) -> list:
    """Process-pool entry point: simulate a chunk of sweep points.

    *payloads* is either a list of :func:`run_point` payload dicts or a
    :func:`repro.service.transport.pack` blob of one; replies come back
    in submission order, one :func:`run_point` reply per payload.  Each
    point still runs under its own deadlines and degrades to its own
    error record — chunking only amortizes the per-future dispatch and
    serialization overhead, it never couples point outcomes (except
    that a worker crash takes the whole in-flight chunk down, which the
    runner's retry pass then re-attributes point by point).

    ``run_point`` is resolved through the module namespace on each call
    so test seams that monkeypatch it keep working under chunking.
    """
    if transport.is_packed(payloads):
        payloads = transport.unpack(payloads)
    return [run_point(payload) for payload in payloads]
