"""Content-addressed on-disk result cache for the sweep service.

Every cache entry is one simulation result, stored as the JSON emitted by
:meth:`SimulationResult.to_json` under a name derived from *what produced
it*: the trace content digest, the config's :meth:`cache_key`, the result
schema version, and whether a timeline was recorded.  Re-running any sweep
or figure therefore returns previously computed points instantly, and a
change to either schema silently invalidates old entries (the key changes;
no migration code needed).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time as _time
from pathlib import Path
from typing import Optional, Union

from repro.core.config import SimulationConfig
from repro.core.results import RESULT_SCHEMA_VERSION, SimulationResult
from repro.trace.trace import trace_digest  # noqa: F401  (re-export)


class ResultCache:
    """Directory of content-addressed :class:`SimulationResult` entries.

    Parameters
    ----------
    root:
        Cache directory; created on first use.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def point_key(trace_key: str, config: SimulationConfig,
                  record_timeline: bool = False) -> str:
        """Cache key of one ``(trace, config)`` sweep point."""
        canonical = json.dumps(
            {
                "trace": trace_key,
                "config": config.cache_key(),
                "result_schema": RESULT_SCHEMA_VERSION,
                "timeline": bool(record_timeline),
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an entry for *key* exists on disk right now.

        A pure existence probe: no hit/miss accounting, no
        deserialization, no corruption eviction — the cheap check the
        resume smoke test uses to compare journal replay against cache
        contents key-for-key.
        """
        return self._path(key).is_file()

    def load(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or ``None`` (counted as a miss).

        Safe against concurrent writers and pruners: a file that
        disappears between the existence implied by the key and the read
        (e.g. :meth:`prune` in another process unlinking it) is a miss,
        and a transient ``OSError`` gets one retry before giving up.
        """
        path = self._path(key)
        text = None
        for _attempt in range(2):
            try:
                text = path.read_text()
                break
            except FileNotFoundError:
                # Concurrently pruned/unlinked: a plain miss, no retry.
                self.misses += 1
                return None
            except OSError:
                continue
        if text is None:
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_json(text)
        except (ValueError, KeyError):
            # Corrupt or stale-schema entry: drop it and treat as a miss.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def prune(self, max_entries: Optional[int] = None,
              max_age: Optional[float] = None) -> int:
        """Evict entries beyond *max_entries* (oldest first) or older than
        *max_age* seconds; returns the number removed.

        Ordering is by ``(mtime, name)`` so ties break deterministically.
        Concurrent readers are safe: an entry that vanishes mid-prune (or
        is being read while unlinked) is simply skipped — :meth:`load`
        treats the missing file as a miss.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_age is not None and max_age < 0:
            raise ValueError("max_age must be non-negative")
        if not self.root.is_dir():
            return 0
        entries = []
        for path in self.root.iterdir():
            if path.suffix != ".json":
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # vanished between iterdir and stat
            entries.append((mtime, path.name, path))
        entries.sort()
        doomed = []
        if max_age is not None:
            cutoff = _time.time() - max_age
            doomed.extend(e for e in entries if e[0] < cutoff)
            entries = [e for e in entries if e[0] >= cutoff]
        if max_entries is not None and len(entries) > max_entries:
            doomed.extend(entries[:len(entries) - max_entries])
        removed = 0
        for _mtime, _name, path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass  # another pruner got there first
        return removed

    def store(self, key: str, result: SimulationResult) -> None:
        """Persist *result* under *key* (atomic rename; crash-safe)."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(result.to_json())
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk since construction."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for p in self.root.iterdir() if p.suffix == ".json")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix == ".json":
                    path.unlink()
                    removed += 1
        self.hits = 0
        self.misses = 0
        return removed
