"""Declarative sweep specifications (the ``repro sweep`` input format).

A sweep spec is a JSON document naming the input trace and the region of
the design space to cover: a ``base`` config plus ``axes`` whose values
are cross-producted::

    {
      "trace": "rn50.json",
      "base":  {"parallelism": "ddp", "gpu": "A100"},
      "axes":  {"num_gpus": [2, 4, 8],
                "link_bandwidth": [25e9, 100e9, 234e9]},
      "workers": 4,
      "cache_dir": ".repro-cache",
      "plan_dir": ".repro-plans",
      "journal_dir": ".repro-journal",
      "deadline_soft": 60,
      "deadline_hard": 120,
      "breaker": {"window": 16, "threshold": 0.5}
    }

Instead of ``trace`` (a path), a spec may name a zoo ``model`` (plus
optional ``gpu``/``batch``/``seq_len``) and the trace is collected with
the built-in :class:`~repro.trace.tracer.Tracer`.  Axis order follows the
spec file, and points expand in row-major (last axis fastest) order, so a
spec always produces the same points in the same order.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import SimulationConfig
from repro.trace.trace import Trace

_TOP_LEVEL_KEYS = {
    "trace", "model", "gpu", "batch", "seq_len",
    "base", "axes", "workers", "cache_dir", "timeout", "plan_dir",
    "journal_dir", "deadline_soft", "deadline_hard", "breaker",
}


@dataclass
class SweepSpec:
    """A parsed sweep specification."""

    base: dict = field(default_factory=dict)
    axes: Dict[str, list] = field(default_factory=dict)
    trace_path: Optional[str] = None
    model: Optional[str] = None
    gpu: str = "A100"
    batch: Optional[int] = None
    seq_len: Optional[int] = None
    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    timeout: Optional[float] = None
    #: Directory for the persistent extrapolation-plan cache
    #: (``docs/plans.md``); ``None`` keeps plan sharing in-memory only.
    plan_dir: Optional[str] = None
    #: Directory for the crash-safe write-ahead journal
    #: (``docs/resilience.md``); ``None`` disables journaling.
    journal_dir: Optional[str] = None
    #: Per-point deadline budgets (seconds): cooperative soft stop and
    #: hard kill.  ``deadline_hard`` wins over the legacy ``timeout``.
    deadline_soft: Optional[float] = None
    deadline_hard: Optional[float] = None
    #: Dispatch circuit breaker: ``True`` for defaults, or a dict of
    #: :class:`~repro.service.runner.CircuitBreaker` keyword arguments
    #: (``window``, ``threshold``, ``min_samples``, ``probe_interval``).
    breaker: Union[bool, dict, None] = None

    def __post_init__(self):
        if (self.trace_path is None) == (self.model is None):
            raise ValueError(
                "a sweep spec needs exactly one trace source: "
                "'trace' (a file) or 'model' (a zoo workload)"
            )
        for axis, values in self.axes.items():
            if not isinstance(values, list) or not values:
                raise ValueError(
                    f"axis {axis!r} must map to a non-empty list"
                )
        for name in ("deadline_soft", "deadline_hard"):
            value = getattr(self, name)
            if value is not None and float(value) <= 0:
                raise ValueError(f"{name} must be positive (or null)")
        if (self.deadline_soft is not None and self.deadline_hard is not None
                and self.deadline_soft > self.deadline_hard):
            raise ValueError("deadline_soft must not exceed deadline_hard")
        if not isinstance(self.breaker, (bool, dict, type(None))):
            raise ValueError(
                "breaker must be true, false, null, or an object of "
                "CircuitBreaker settings"
            )
        # Fail early on typos: every point must build a valid config.
        self.expand()

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        unknown = set(data) - _TOP_LEVEL_KEYS
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {sorted(unknown)}")
        return cls(
            base=dict(data.get("base", {})),
            axes=dict(data.get("axes", {})),
            trace_path=data.get("trace"),
            model=data.get("model"),
            gpu=data.get("gpu", "A100"),
            batch=data.get("batch"),
            seq_len=data.get("seq_len"),
            workers=data.get("workers"),
            cache_dir=data.get("cache_dir"),
            timeout=data.get("timeout"),
            plan_dir=data.get("plan_dir"),
            journal_dir=data.get("journal_dir"),
            deadline_soft=data.get("deadline_soft"),
            deadline_hard=data.get("deadline_hard"),
            breaker=data.get("breaker"),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def expand(self) -> List[Tuple[str, SimulationConfig]]:
        """The cross-product as ``(label, config)`` pairs, in spec order.

        Every point goes through :meth:`SimulationConfig.from_dict`, so an
        invalid combination (or a misspelled axis name) raises the same
        ``ValueError`` a direct construction would.
        """
        names = list(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            overrides = dict(zip(names, combo))
            config = SimulationConfig.from_dict({**self.base, **overrides})
            label = ",".join(f"{n}={v}" for n, v in overrides.items())
            points.append((label or "base", config))
        return points

    # ------------------------------------------------------------------
    # Trace acquisition
    # ------------------------------------------------------------------
    def load_trace(self, base_dir: Union[str, Path, None] = None) -> Trace:
        """The spec's input trace: loaded from disk or freshly collected.

        Relative ``trace`` paths resolve against *base_dir* (typically the
        spec file's directory).
        """
        if self.trace_path is not None:
            path = Path(self.trace_path)
            if base_dir is not None and not path.is_absolute():
                path = Path(base_dir) / path
            return Trace.load(path)
        from repro.gpus.specs import get_gpu
        from repro.trace.tracer import Tracer
        from repro.workloads.registry import get_model

        model = get_model(self.model, seq_len=self.seq_len) \
            if self.seq_len else get_model(self.model)
        batch = self.batch or 128
        return Tracer(get_gpu(self.gpu)).trace(model, batch)
