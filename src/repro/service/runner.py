"""The parallel sweep service.

:class:`SweepRunner` fans a list of :class:`SimulationConfig` points over a
``concurrent.futures.ProcessPoolExecutor`` (or runs them in-process when
``max_workers <= 1``), with:

* a content-addressed on-disk result cache (:mod:`repro.service.cache`) —
  re-running any figure or sweep returns previously computed points
  instantly;
* shared-work dedup — cross-GPU trace rescaling happens once per
  ``(trace, target GPU)`` in the parent, and performance-model fits happen
  once per worker process instead of once per point;
* extrapolation-plan sharing (:mod:`repro.core.plan`) — points differing
  only in network/topology/fault parameters reuse one cached task-graph
  plan; with a plan directory the parent pre-builds each distinct plan
  once and workers load it from disk;
* graceful degradation — a failing config yields a structured
  :class:`SweepError` (with the worker traceback) instead of killing the
  sweep, and each point runs under an optional wall-clock timeout;
* worker-crash survival — a point whose worker process dies (segfault,
  OOM kill, chaos injection) breaks only its pool, not the sweep: the
  executor is rebuilt and the in-flight points are retried in isolation
  with seeded, bounded exponential backoff, then (last rung) once
  in-process with chaos disarmed; a point that still fails becomes
  ``SweepError(kind="WorkerCrashed")`` while every other point completes
  normally;
* a crash-safe write-ahead journal (:mod:`repro.service.journal`) —
  every dispatch and every terminal disposition is fsync'd before the
  sweep proceeds, so a SIGKILL'd sweep resumes from its journal
  re-dispatching only the incomplete points, bit-identically;
* per-point deadline budgets — a cooperative soft deadline enforced by
  the engine heartbeat (partial progress preserved) plus the hard
  ``SIGALRM``/watchdog kill, both reported as ``PointTimeout``;
* a dispatch circuit breaker (:class:`CircuitBreaker`) — a crash/timeout
  storm trips the breaker and the remaining points fail fast as
  ``CircuitOpen`` instead of feeding workers to a dying machine, with
  half-open probes to resume once points succeed again;
* live progress through the existing :mod:`repro.engine.hooks` mechanism —
  the runner is a :class:`Hookable` and fires ``sweep_start`` /
  ``sweep_point`` / ``sweep_end`` positions with completed/total counts,
  cache hit-rate, aggregate simulated-events/sec, and an ETA.

Determinism: TrioSim is deterministic and every point is independent, so
parallel execution, in-process execution, cache replay, and journal
resume all produce bit-identical ``total_time`` values.

The failure taxonomy (``SweepError.kind``) is documented in
``docs/resilience.md``: ``LintError`` / ``VerifyError`` (pre-dispatch),
``PointTimeout`` (either deadline), ``WorkerCrashed`` (all rungs
exhausted), ``CircuitOpen`` (failed fast by the breaker), and
``Interrupted`` (Ctrl-C before the point completed).
"""

from __future__ import annotations

import os
import random
import time as _wall
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.linter import lint_config
from repro.analysis.reporters import render_text
from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.results import SimulationResult
from repro.core.simulator import TrioSim
from repro.engine.hooks import HookCtx, Hookable
from repro.perfmodel.scaling import CrossGPUScaler
from repro.service import transport
from repro.service import worker as _worker
from repro.service.cache import ResultCache, trace_digest
from repro.service.journal import (
    JournalMismatchError,
    SweepJournal,
    check_resume,
    point_fingerprint,
    sweep_fingerprint,
)
from repro.trace.trace import Trace

#: Hook positions emitted by the runner.
HOOK_SWEEP_START = "sweep_start"
HOOK_SWEEP_POINT = "sweep_point"
HOOK_SWEEP_END = "sweep_end"


@dataclass(frozen=True)
class SweepError:
    """Structured record of one failed sweep point."""

    kind: str        # taxonomy name, e.g. "PointTimeout", "WorkerCrashed"
    message: str
    traceback: str = ""
    #: Structured context — e.g. a soft timeout's partial progress
    #: (elapsed wall time, events dispatched, simulated_time reached).
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "message": self.message,
                "traceback": self.traceback}
        if self.detail:
            data["detail"] = dict(self.detail)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepError":
        return cls(**data)


class SweepPointError(RuntimeError):
    """Raised by :meth:`SweepOutcome.unwrap` for a failed point."""

    def __init__(self, error: SweepError):
        super().__init__(f"{error.kind}: {error.message}\n{error.traceback}")
        self.error = error


@dataclass
class SweepOutcome:
    """Result (or failure) of one sweep point, in input order."""

    index: int
    config: SimulationConfig
    label: str = ""
    result: Optional[SimulationResult] = None
    error: Optional[SweepError] = None
    cached: bool = False
    #: Runtime sanitizer findings (dict form) when the runner sanitizes.
    sanitizer_findings: List[dict] = field(default_factory=list)
    #: Isolated re-executions this point needed after its worker died.
    retries: int = 0
    #: Replayed from a resume journal instead of being re-simulated.
    resumed: bool = False
    #: Recovered by the last graceful-degradation rung (in-process, no
    #: pool) after every isolated retry crashed its worker.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def unwrap(self) -> SimulationResult:
        """The result, or raise :class:`SweepPointError`."""
        if self.result is None:
            raise SweepPointError(
                self.error or SweepError("Unknown", "point produced no result")
            )
        return self.result

    def to_dict(self) -> dict:
        """JSON-safe summary (the CLI's sweep output codepath)."""
        return {
            "index": self.index,
            "label": self.label,
            "config": (self.config.to_dict()
                       if self.config.is_serializable else None),
            "cached": self.cached,
            "result": self.result.to_dict() if self.result else None,
            "error": self.error.to_dict() if self.error else None,
            "sanitizer_findings": list(self.sanitizer_findings),
            "retries": self.retries,
            "resumed": self.resumed,
            "degraded": self.degraded,
        }


@dataclass
class SweepMetrics:
    """Live counters surfaced through the progress hooks."""

    total: int = 0
    completed: int = 0
    cache_hits: int = 0
    errors: int = 0
    fresh_events: int = 0     # engine events dispatched for non-cached points
    elapsed: float = 0.0
    retries: int = 0          # isolated re-executions after worker crashes
    worker_crashes: int = 0   # points abandoned as WorkerCrashed
    plan_builds: int = 0      # extrapolator graph builds actually performed
    plan_cache_hits: int = 0  # fresh points served by a cached plan
    timeouts: int = 0         # points cut down as PointTimeout (either kind)
    circuit_trips: int = 0    # breaker transitions into the open state
    circuit_skips: int = 0    # points failed fast as CircuitOpen
    interrupted: int = 0      # points marked Interrupted by Ctrl-C
    resumed: int = 0          # points replayed from a resume journal
    degraded_recoveries: int = 0  # crash victims saved by the in-process rung

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    @property
    def events_per_sec(self) -> float:
        return self.fresh_events / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to finish, or ``None`` before any completion.

        ``None`` (serialized ``null``), not ``NaN`` — ``json.dumps``
        renders ``NaN`` bare, which is not JSON and which strict
        consumers reject.
        """
        if not self.completed:
            return None
        remaining = self.total - self.completed
        return remaining * (self.elapsed / self.completed)

    @staticmethod
    def _json_safe(value: Optional[float]) -> Optional[float]:
        """Non-finite floats become ``None`` so detail() is valid JSON."""
        if value is None or value != value or value in (
                float("inf"), float("-inf")):
            return None
        return value

    def detail(self) -> dict:
        return {
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "hit_rate": self._json_safe(self.hit_rate),
            "errors": self.errors,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "plan_builds": self.plan_builds,
            "plan_cache_hits": self.plan_cache_hits,
            "timeouts": self.timeouts,
            "circuit_trips": self.circuit_trips,
            "circuit_skips": self.circuit_skips,
            "interrupted": self.interrupted,
            "resumed": self.resumed,
            "degraded_recoveries": self.degraded_recoveries,
            "fresh_events": self.fresh_events,
            "events_per_sec": self._json_safe(self.events_per_sec),
            "eta_seconds": self._json_safe(self.eta_seconds),
            "elapsed": self.elapsed,
        }


class CircuitBreaker:
    """Sliding-window failure-rate circuit breaker for point dispatch.

    Protects a sweep from feeding every remaining point to a dying
    substrate (an OOM-looping machine, a poisoned worker image): once the
    crash/timeout rate over the last :attr:`window` dispatched points
    reaches :attr:`threshold`, the breaker *trips open* and subsequent
    points fail fast as ``SweepError(kind="CircuitOpen")`` without
    touching a worker.  While open, every :attr:`probe_interval`-th
    admission attempt is let through as a *half-open probe*: a probe that
    succeeds closes the breaker (dispatch resumes normally, window
    cleared); a probe that fails reopens it.

    Only infrastructure failures count against the breaker
    (:attr:`FAILURE_KINDS`: worker crashes and deadline overruns) — a
    point that fails on its own config (lint, verify, simulation error)
    says nothing about the substrate's health.

    Deterministic by construction: every transition is driven by counts
    of recorded outcomes and skipped admissions, never by wall-clock
    time, so breaker behaviour in tests and replays is exactly
    reproducible.
    """

    #: Error kinds that count as substrate failures.
    FAILURE_KINDS = frozenset({"WorkerCrashed", _worker.TIMEOUT_KIND})

    def __init__(self, window: int = 16, threshold: float = 0.5,
                 min_samples: int = 4, probe_interval: int = 4):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.probe_interval = probe_interval
        #: True entries are failures; bounded sliding window.
        self._outcomes: deque = deque(maxlen=window)
        self.state = "closed"          # closed | open | half_open
        self.trips = 0
        self.last_failure_kind: Optional[str] = None
        self._skips_since_open = 0

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def admit(self) -> bool:
        """May the next point be dispatched?  (May transition to probe.)

        Closed: always.  Half-open: no — exactly one probe flies at a
        time.  Open: fail fast, except that every
        :attr:`probe_interval`-th attempt becomes the half-open probe and
        is admitted.
        """
        if self.state == "closed":
            return True
        if self.state == "half_open":
            return False
        self._skips_since_open += 1
        if self._skips_since_open >= self.probe_interval:
            self.state = "half_open"
            return True
        return False

    def record_success(self) -> None:
        """A dispatched point completed (or failed on its own config)."""
        if self.state == "half_open":
            # The probe came back healthy: close and forget the storm.
            self.state = "closed"
            self._outcomes.clear()
            self._skips_since_open = 0
            return
        self._outcomes.append(False)

    def record_failure(self, kind: str) -> bool:
        """A dispatched point failed as *kind*; True when this tripped.

        Kinds outside :attr:`FAILURE_KINDS` are ignored (returns False).
        A half-open probe failure reopens immediately (counted as a
        trip); in the closed state the window must both hold
        :attr:`min_samples` outcomes and cross :attr:`threshold`.
        """
        if kind not in self.FAILURE_KINDS:
            return False
        self.last_failure_kind = kind
        if self.state == "half_open":
            self.state = "open"
            self._skips_since_open = 0
            self.trips += 1
            return True
        self._outcomes.append(True)
        if (self.state == "closed"
                and len(self._outcomes) >= self.min_samples
                and self.failure_rate >= self.threshold):
            self.state = "open"
            self._skips_since_open = 0
            self.trips += 1
            return True
        return False


class SweepRunner(Hookable):
    """Run many ``(trace, config)`` points fast, cached, and fault-tolerant.

    Parameters
    ----------
    max_workers:
        Process count for the fan-out; ``None`` uses the machine's CPU
        count, and values ``<= 1`` run every point in-process (the
        deterministic baseline — results are bit-identical either way).
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` to
        disable caching.
    timeout:
        Optional per-point wall-clock budget in seconds; an expired point
        becomes a ``PointTimeout`` error record.  Alias for the hard
        deadline — ``deadline_hard`` wins when both are given.
    deadline_soft:
        Optional cooperative per-point budget (seconds): the engine
        heartbeat checks the wall clock every few hundred events and
        stops the point with a ``PointTimeout`` error carrying its
        partial progress (events dispatched, simulated time reached).
        A per-config ``config.deadline_soft`` overrides the sweep-wide
        value for that point.
    deadline_hard:
        Optional uncooperative per-point budget (seconds): ``SIGALRM``
        (or the watchdog thread) kills the point wherever it is.  Give
        both — soft first for attributable partial progress, hard as the
        backstop for points stuck outside the engine loop.  Per-config
        ``config.deadline_hard`` overrides.
    journal:
        A :class:`~repro.service.journal.SweepJournal`, a directory path
        for one, or ``None`` (default) to disable write-ahead journaling
        entirely (zero overhead).  With a journal every dispatch and
        every terminal disposition is fsync'd before the sweep proceeds.
    resume:
        With a journal: replay completed points from it and re-dispatch
        only the remainder.  The journal's fingerprint must match this
        sweep (trace, point set and order, timeline flag) or the runner
        raises :class:`~repro.service.journal.JournalMismatchError`
        (lint rule ``SV001``); resume admission findings land on
        :attr:`last_resume_report`.
    breaker:
        A :class:`CircuitBreaker`, ``True`` for one with defaults, or
        ``None`` (default) to dispatch unconditionally.  See the class
        docstring for trip/probe semantics.
    hooks:
        Observers registered for the runner's progress positions.
    lint:
        Statically lint every config against the trace *before* any
        simulation is dispatched (on by default).  A point with error
        findings becomes a structured ``LintError`` outcome instead of
        wasting a worker slot on a doomed or nonsensical simulation.
    sanitize:
        Run every simulated point with the runtime sanitizers attached;
        findings land on each outcome's ``sanitizer_findings``.
    verify:
        Deep-verify every point's task graph *before* any simulation is
        dispatched (cycles, dead tasks, mismatched collectives,
        memory-infeasible schedules — the ``DV`` rules) and run the
        determinism race detectors (``RC`` rules) during each point.  A
        point whose graph fails verification becomes a structured
        ``VerifyError`` outcome, mirroring ``LintError``; points sharing
        an extrapolation plan share one verification, and the verified
        plans land in the plan cache so the sweep itself reuses them.
        Race findings ride each outcome's ``sanitizer_findings``
        (distinguishable by their ``RC``/``DV`` rule ids).
    retry_seed:
        Seed of the crash-retry backoff jitter, so retry timing (the only
        nondeterminism a crash introduces) is reproducible.
    retry_backoff:
        Base of the bounded exponential backoff between isolated retries
        of a crashed point, in seconds.
    plan_cache:
        Extrapolation-plan sharing (see :mod:`repro.core.plan`; on by
        default).  ``True`` keeps an in-memory :class:`PlanCache` in the
        parent (in-process points) plus a private one per worker; a
        directory path (or a rooted :class:`PlanCache`) additionally
        persists plans, letting the parent pre-build each distinct plan
        once and every worker load it; ``False``/``None`` disables the
        cache and every point re-extrapolates.  Results are bit-identical
        in all three modes.
    dispatch_chunk:
        Points per pool submission.  ``None`` (default) sizes chunks
        automatically — single-point futures for small sweeps (keeping
        crash attribution maximally precise), growing bounded chunks
        once the sweep is large enough that per-future dispatch and
        serialization overhead matters.  Every point in a chunk is
        still admitted by the breaker and write-ahead journaled
        individually before the chunk is submitted, runs under its own
        deadlines, and degrades to its own error record; a worker crash
        takes the whole in-flight chunk as victims, which the isolated
        retry pass then re-attributes point by point.
    """

    #: Bound on memoized (rescaled trace, fitted models) entries.
    SHARED_WORK_LIMIT = 64

    #: Isolated re-executions granted to a point whose worker died; a
    #: point still crashing after these becomes ``WorkerCrashed``.
    MAX_CRASH_RETRIES = 2

    #: Ceiling on any single backoff sleep, seconds.
    MAX_BACKOFF = 2.0

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Union[ResultCache, str, Path, None] = None,
                 timeout: Optional[float] = None, hooks: Sequence = (),
                 lint: bool = True, sanitize: bool = False,
                 verify: bool = False,
                 retry_seed: int = 0, retry_backoff: float = 0.05,
                 plan_cache: Union[PlanCache, str, Path, bool, None] = True,
                 deadline_soft: Optional[float] = None,
                 deadline_hard: Optional[float] = None,
                 journal: Union[SweepJournal, str, Path, None] = None,
                 resume: bool = False,
                 breaker: Union[CircuitBreaker, bool, None] = None,
                 dispatch_chunk: Optional[int] = None):
        super().__init__()
        self.max_workers = max_workers if max_workers is not None \
            else (os.cpu_count() or 1)
        self.cache = (ResultCache(cache)
                      if isinstance(cache, (str, Path)) else cache)
        if plan_cache is True:
            self.plan_cache: Optional[PlanCache] = PlanCache()
        elif isinstance(plan_cache, (str, Path)):
            self.plan_cache = PlanCache(root=plan_cache)
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            self.plan_cache = None
        self.timeout = timeout
        if (deadline_soft is not None and deadline_hard is not None
                and deadline_soft > deadline_hard):
            raise ValueError("deadline_soft must not exceed deadline_hard")
        self.deadline_soft = deadline_soft
        self.deadline_hard = deadline_hard
        self.journal = (SweepJournal(journal)
                        if isinstance(journal, (str, Path)) else journal)
        self.resume = resume
        if breaker is True:
            self.breaker: Optional[CircuitBreaker] = CircuitBreaker()
        else:
            self.breaker = breaker or None
        if dispatch_chunk is not None and dispatch_chunk < 1:
            raise ValueError("dispatch_chunk must be >= 1")
        self.dispatch_chunk = dispatch_chunk
        self.lint = lint
        self.sanitize = sanitize
        self.verify = verify
        self.retry_seed = retry_seed
        self.retry_backoff = retry_backoff
        self.last_metrics: Optional[SweepMetrics] = None
        #: Resume admission findings (SV rules) from the latest run().
        self.last_resume_report = None
        # Per-run journal bookkeeping (set by run(), used by _note_done).
        self._journal_keys: Optional[List[str]] = None
        # (trace digest, target gpu) -> [prepared Trace, {perf_model: OpTimeModel}]
        # An LRU shared across run() calls, so per-point predict() loops
        # (the experiments harness) still rescale and fit exactly once.
        self._shared: "OrderedDict[str, list]" = OrderedDict()
        for hook in hooks:
            self.accept_hook(hook)

    # ------------------------------------------------------------------
    # Shared-work preparation
    # ------------------------------------------------------------------
    @staticmethod
    def _gpu_key(trace: Trace, config: SimulationConfig) -> str:
        """The rescaling target this config needs ("native" = none)."""
        target = config.gpu
        if target is not None and target.upper() != trace.gpu_name.upper():
            return target.upper()
        return "native"

    def _shared_work(self, trace: Trace, gpu_key: str) -> list:
        """The memoized ``[prepared trace, op-time models]`` slot for
        ``(trace, target GPU)`` — rescaling runs at most once per pair."""
        slot_key = f"{trace_digest(trace)}:{gpu_key}"
        slot = self._shared.get(slot_key)
        if slot is None:
            if gpu_key == "native":
                prepared = trace
            else:
                scaler = CrossGPUScaler.between(trace.gpu_name, gpu_key)
                prepared = scaler.convert_trace(trace)
            slot = [prepared, {}]
            self._shared[slot_key] = slot
            if len(self._shared) > self.SHARED_WORK_LIMIT:
                self._shared.popitem(last=False)
        else:
            self._shared.move_to_end(slot_key)
        return slot

    def _prepare_traces(self, trace: Trace, points) -> Dict[str, Trace]:
        """Rescale *trace* once per distinct target GPU among *points*."""
        prepared: Dict[str, Trace] = {}
        for point in points:
            gpu_key = self._gpu_key(trace, point.config)
            if gpu_key not in prepared:
                prepared[gpu_key] = self._shared_work(trace, gpu_key)[0]
        return prepared

    def _plan_mode(self) -> Optional[str]:
        """The worker-initializer encoding of this runner's plan cache:
        ``None`` disabled, ``""`` private in-memory, else a shared
        directory."""
        if self.plan_cache is None:
            return None
        if self.plan_cache.root is not None:
            return str(self.plan_cache.root)
        return ""

    def _prepare_plans(self, trace: Trace, points,
                       metrics: "SweepMetrics") -> None:
        """Build each distinct plan once in the parent (disk-backed
        caches only), so pool workers load instead of re-extrapolating.

        Preparation is best-effort: a config whose plan can't even be
        built will fail identically — with a proper error record — when
        its point runs.
        """
        if self.plan_cache is None or self.plan_cache.root is None:
            return
        seen = set()
        for outcome in points:
            try:
                gpu_key = self._gpu_key(trace, outcome.config)
                point_trace, op_times = self._shared_work(trace, gpu_key)
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                sim = TrioSim(point_trace, outcome.config,
                              record_timeline=False, op_time=op_time)
                key = sim.plan_key()
                if key in seen:
                    continue
                seen.add(key)
                _plan, source = self.plan_cache.get_or_build(
                    key, sim.build_plan)
                if source == "built":
                    metrics.plan_builds += 1
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, trace: Trace, configs: Sequence[SimulationConfig],
            record_timeline: bool = False,
            labels: Optional[Sequence[str]] = None) -> List[SweepOutcome]:
        """Simulate every config against *trace*; outcomes in input order."""
        configs = list(configs)
        labels = list(labels) if labels is not None else [""] * len(configs)
        if len(labels) != len(configs):
            raise ValueError("labels must match configs in length")
        started = _wall.perf_counter()
        metrics = SweepMetrics(total=len(configs))
        self.last_metrics = metrics
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_START, 0.0, item=None, detail=metrics.detail())
        )

        outcomes = [
            SweepOutcome(index=i, config=cfg, label=labels[i])
            for i, cfg in enumerate(configs)
        ]
        base_key = (trace_digest(trace)
                    if (self.cache is not None or self.journal is not None)
                    else "")

        # Journal setup: fingerprint the sweep, then either replay a
        # matching journal (resume) or write a fresh begin record.  Both
        # the mismatch check and the replay happen before any lint /
        # verify / simulation work is dispatched.
        survivors = self._journal_open(trace, outcomes, record_timeline,
                                       base_key, metrics, started)

        try:
            # Lint pass: reject statically-broken points before
            # dispatching any simulation work for them.
            if self.lint:
                remaining = []
                for outcome in survivors:
                    report = lint_config(outcome.config, trace=trace)
                    if report.has_errors:
                        outcome.error = SweepError(
                            kind="LintError",
                            message="; ".join(str(f) for f in report.errors),
                            # Findings stand in for a traceback: the point
                            # never ran, but the error record must still
                            # explain why.
                            traceback=render_text(report, source="lint"),
                        )
                        self._note_done(outcome, metrics, started)
                    else:
                        remaining.append(outcome)
                survivors = remaining

            # Verify pass: deep-verify each distinct task graph once
            # before dispatching any simulation work built on it.
            if self.verify:
                survivors = self._verify_points(trace, survivors, metrics,
                                                started)

            # Cache pass: satisfy points without any simulation.
            pending: List[SweepOutcome] = []
            for outcome in survivors:
                hit = None
                if self.cache is not None and outcome.config.is_serializable:
                    key = self.cache.point_key(base_key, outcome.config,
                                               record_timeline)
                    hit = self.cache.load(key)
                if hit is not None:
                    outcome.result = hit
                    outcome.cached = True
                    metrics.cache_hits += 1
                    self._note_done(outcome, metrics, started)
                else:
                    pending.append(outcome)

            parallel = [o for o in pending if o.config.is_serializable]
            inproc = [o for o in pending if not o.config.is_serializable]
            workers = min(self.max_workers, len(parallel))
            if workers <= 1:
                inproc = pending
                parallel = []

            if parallel:
                self._run_parallel(trace, parallel, workers, record_timeline,
                                   metrics, started, base_key)
            if inproc:
                self._run_inproc(trace, inproc, record_timeline, metrics,
                                 started, base_key)
        except KeyboardInterrupt:
            # Mark everything that never reached a terminal state, leave
            # a clean journal tail, fire sweep_end, and let the
            # interrupt propagate (the CLI exits 130).
            self._mark_interrupted(outcomes, metrics)
            metrics.elapsed = _wall.perf_counter() - started
            self.invoke_hooks(
                HookCtx(HOOK_SWEEP_END, 0.0, item=outcomes,
                        detail=metrics.detail())
            )
            self._journal_close(metrics)
            raise

        metrics.elapsed = _wall.perf_counter() - started
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_END, 0.0, item=outcomes,
                    detail=metrics.detail())
        )
        self._journal_close(metrics)
        return outcomes

    # ------------------------------------------------------------------
    # Journal lifecycle
    # ------------------------------------------------------------------
    def _journal_open(self, trace: Trace, outcomes: List[SweepOutcome],
                      record_timeline: bool, base_key: str,
                      metrics: SweepMetrics,
                      started: float) -> List[SweepOutcome]:
        """Begin (or resume) the journal; returns the points still to run.

        Without a journal this is the identity on *outcomes*.  On resume,
        completed points are replayed from the journal's ``done`` records
        — results round-trip through JSON exactly, so a replayed point is
        bit-identical to re-simulating it — and only the remainder is
        returned for the lint/verify/cache/simulate passes.
        """
        self.last_resume_report = None
        self._journal_keys = None
        if self.journal is None:
            return outcomes
        keys = [
            point_fingerprint(base_key, o.config, record_timeline)
            for o in outcomes
        ]
        self._journal_keys = keys
        fingerprint = sweep_fingerprint(base_key, keys, record_timeline)
        if self.resume and self.journal.exists():
            state = self.journal.read()
            report = check_resume(state, fingerprint,
                                  deadline_hard=self._hard_deadline_default())
            self.last_resume_report = report
            if report.has_errors:
                raise JournalMismatchError(report)
            completed = state.completed
            survivors: List[SweepOutcome] = []
            for outcome in outcomes:
                record = completed.get(outcome.index)
                key = keys[outcome.index]
                # Defense in depth on top of the fingerprint check: a
                # done record is replayed only if it carries exactly
                # this point's content-addressed key; anything else
                # (a forged or foreign record) simply re-runs.
                if (record is None or key == "unserializable"
                        or record.get("key") != key):
                    survivors.append(outcome)
                    continue
                outcome.result = SimulationResult.from_dict(record["result"])
                outcome.resumed = True
                outcome.cached = bool(record.get("cached"))
                metrics.resumed += 1
                self._note_done(outcome, metrics, started)
            self.journal.resume_marker(fingerprint, replayed=metrics.resumed,
                                       remaining=len(survivors))
            return survivors
        self.journal.begin(fingerprint, base_key, len(outcomes),
                           record_timeline)
        return outcomes

    def _journal_dispatch(self, outcome: SweepOutcome) -> None:
        """Write-ahead record: *outcome* is about to reach a worker."""
        if self.journal is not None and self._journal_keys is not None:
            self.journal.dispatch(outcome.index,
                                  self._journal_keys[outcome.index],
                                  outcome.label)

    def _journal_close(self, metrics: SweepMetrics) -> None:
        if self.journal is not None:
            self.journal.end(metrics.detail())
            self.journal.close()

    def _mark_interrupted(self, outcomes: List[SweepOutcome],
                          metrics: SweepMetrics) -> None:
        """Ctrl-C landed mid-sweep: give every unfinished point a
        terminal ``Interrupted`` record (journaled, so a later resume
        re-dispatches exactly these)."""
        for outcome in outcomes:
            if outcome.result is not None or outcome.error is not None:
                continue
            outcome.error = SweepError(
                kind="Interrupted",
                message="sweep interrupted before this point completed",
            )
            metrics.errors += 1
            metrics.interrupted += 1
            if self.journal is not None and self._journal_keys is not None:
                self.journal.interrupt(outcome.index)

    def _verify_points(self, trace: Trace, points: List[SweepOutcome],
                       metrics: SweepMetrics,
                       started: float) -> List[SweepOutcome]:
        """Pre-dispatch deep verification, deduplicated by plan key.

        Points differing only in execute-time parameters share an
        extrapolation plan, so a 16-point network sweep verifies one
        graph, not sixteen; the built plans land in the plan cache and
        the sweep itself reuses them.  A config whose graph can't even
        be built is passed through — it will fail identically, with a
        proper error record, when its point runs.
        """
        from repro.analysis.verifier import verify_plan

        verified: Dict[str, object] = {}
        survivors: List[SweepOutcome] = []
        for outcome in points:
            report = None
            try:
                gpu_key = self._gpu_key(trace, outcome.config)
                point_trace, op_times = self._shared_work(trace, gpu_key)
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                sim = TrioSim(point_trace, outcome.config,
                              record_timeline=False, op_time=op_time)
                key = sim.plan_key()
                report = verified.get(key)
                if report is None:
                    if self.plan_cache is not None:
                        plan, source = self.plan_cache.get_or_build(
                            key, sim.build_plan)
                        if source == "built":
                            metrics.plan_builds += 1
                    else:
                        plan = sim.build_plan()
                    report = verify_plan(plan, config=outcome.config)
                    verified[key] = report
            except Exception:
                report = None
            if report is not None and report.has_errors:
                outcome.error = SweepError(
                    kind="VerifyError",
                    message="; ".join(str(f) for f in report.errors),
                    traceback=render_text(report, source="verify"),
                )
                self._note_done(outcome, metrics, started)
            else:
                survivors.append(outcome)
        return survivors

    def _note_done(self, outcome: SweepOutcome, metrics: SweepMetrics,
                   started: float) -> None:
        metrics.completed += 1
        if outcome.error is not None:
            metrics.errors += 1
            if outcome.error.kind == _worker.TIMEOUT_KIND:
                metrics.timeouts += 1
        elif outcome.resumed:
            # Replayed work: counted in metrics.resumed (by the journal
            # open), never as fresh events or plan traffic.
            pass
        elif not outcome.cached and outcome.result is not None:
            metrics.fresh_events += outcome.result.events
            source = outcome.result.profile.get("plan_source")
            if source == "built":
                metrics.plan_builds += 1
            elif source in ("memory", "disk"):
                metrics.plan_cache_hits += 1
        if (self.journal is not None and self._journal_keys is not None
                and not outcome.resumed):
            key = self._journal_keys[outcome.index]
            if outcome.result is not None:
                self.journal.done(outcome.index, key,
                                  outcome.result.to_dict(),
                                  cached=outcome.cached)
            elif outcome.error is not None:
                self.journal.fail(outcome.index, key,
                                  outcome.error.to_dict(),
                                  outcome.error.kind)
        metrics.elapsed = _wall.perf_counter() - started
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_POINT, 0.0, item=outcome,
                    detail=metrics.detail())
        )

    def _finish(self, outcome: SweepOutcome, payload: dict,
                record_timeline: bool, base_key: str) -> None:
        """Apply a worker reply to its outcome and cache fresh results."""
        if payload["ok"]:
            outcome.result = SimulationResult.from_dict(payload["result"])
            outcome.sanitizer_findings = payload.get("sanitizer", [])
            if self.cache is not None and outcome.config.is_serializable:
                key = self.cache.point_key(base_key, outcome.config,
                                           record_timeline)
                self.cache.store(key, outcome.result)
        else:
            outcome.error = SweepError.from_dict(payload["error"])

    def _hard_deadline_default(self) -> Optional[float]:
        """Sweep-wide hard budget: ``deadline_hard`` wins over the
        legacy ``timeout`` alias."""
        return self.deadline_hard if self.deadline_hard is not None \
            else self.timeout

    def _hard_deadline(self, config: SimulationConfig) -> Optional[float]:
        """Effective hard budget for one point (config overrides sweep)."""
        if config.deadline_hard is not None:
            return config.deadline_hard
        return self._hard_deadline_default()

    def _soft_deadline(self, config: SimulationConfig) -> Optional[float]:
        """Effective soft budget for one point (config overrides sweep)."""
        if config.deadline_soft is not None:
            return config.deadline_soft
        return self.deadline_soft

    def _point_payload(self, trace: Trace, outcome: SweepOutcome,
                       record_timeline: bool) -> dict:
        return {
            "trace_key": self._gpu_key(trace, outcome.config),
            "config": outcome.config.to_dict(),
            "record_timeline": record_timeline,
            "timeout": self._hard_deadline(outcome.config),
            "deadline_soft": self._soft_deadline(outcome.config),
            "sanitize": self.sanitize,
            # The static tier already ran once per distinct plan in
            # _verify_points; workers only need the race detectors.
            "verify": "races" if self.verify else False,
        }

    def _breaker_record(self, outcome: SweepOutcome,
                        metrics: SweepMetrics) -> None:
        """Feed one dispatched point's disposition to the breaker."""
        if self.breaker is None:
            return
        if (outcome.error is not None
                and outcome.error.kind in CircuitBreaker.FAILURE_KINDS):
            if self.breaker.record_failure(outcome.error.kind):
                metrics.circuit_trips += 1
        elif outcome.result is not None:
            self.breaker.record_success()

    def _breaker_failure(self, kind: str, metrics: SweepMetrics) -> None:
        if self.breaker is not None and self.breaker.record_failure(kind):
            metrics.circuit_trips += 1

    def _admit(self, outcome: SweepOutcome, metrics: SweepMetrics,
               started: float) -> bool:
        """Breaker admission for one point; False = failed fast.

        A rejected point gets a terminal ``CircuitOpen`` error naming
        the failure kind that tripped the breaker, so a journal resume
        re-dispatches it once the substrate recovers.
        """
        if self.breaker is None or self.breaker.admit():
            return True
        metrics.circuit_skips += 1
        culprit = self.breaker.last_failure_kind or "failures"
        outcome.error = SweepError(
            kind="CircuitOpen",
            message=(f"dispatch circuit is open after repeated {culprit}; "
                     "point failed fast without reaching a worker"),
        )
        self._note_done(outcome, metrics, started)
        return False

    def _run_parallel(self, trace: Trace, points: List[SweepOutcome],
                      workers: int, record_timeline: bool,
                      metrics: SweepMetrics, started: float,
                      base_key: str) -> None:
        prepared = self._prepare_traces(trace, points)
        # Packed once per sweep: framed protocol-5 with the numeric
        # trace columns as out-of-band buffers.  Every pool (re)build
        # re-ships this same blob to each worker.
        trace_payload = transport.pack_traces({
            gpu_key: scaled.to_dict() for gpu_key, scaled in prepared.items()
        })
        self._prepare_plans(trace, points, metrics)
        crashed = self._parallel_wave(trace, points, workers, trace_payload,
                                      record_timeline, metrics, started,
                                      base_key)
        if crashed:
            self._retry_crashed(trace, crashed, trace_payload,
                                record_timeline, metrics, started, base_key)

    def _new_pool(self, workers: int,
                  trace_payload: bytes) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker.init_worker,
            initargs=(trace_payload, self._plan_mode()),
        )

    def _chunk_size(self, n_points: int, workers: int) -> int:
        """Points per pool submission (see ``dispatch_chunk``).

        Auto mode keeps single-point futures until the sweep is big
        enough that at least four chunks per worker remain after
        chunking, then grows chunks up to 8 points — bounding both the
        per-future overhead and the blast radius of a chunk-killing
        crash.
        """
        if self.dispatch_chunk is not None:
            return self.dispatch_chunk
        return max(1, min(8, n_points // (workers * 4)))

    def _parallel_wave(self, trace: Trace, points: List[SweepOutcome],
                       workers: int, trace_payload: bytes,
                       record_timeline: bool, metrics: SweepMetrics,
                       started: float, base_key: str) -> List[SweepOutcome]:
        """Fan *points* over a pool; returns the unattributed crash victims.

        Dispatch is incremental — at most ``2 * workers`` futures are in
        flight — so every submission passes the circuit breaker with
        current information and is write-ahead journaled just before it
        reaches the pool.  Points travel in chunks of
        :meth:`_chunk_size` per future (a chunk is one packed blob; the
        worker runs its points sequentially, each under its own
        deadline), which amortizes the submit/result round-trip on large
        sweeps.  When the breaker is open or half-open with work still
        in flight, dispatch pauses rather than failing the queue fast,
        so a successful half-open probe closes the breaker and the
        remaining points dispatch normally (the same recovery semantics
        as the in-process path).  A worker death breaks only the
        in-flight window: those points are collected for the isolated
        retry pass, the pool is rebuilt, and the undispatched queue
        continues on the fresh pool (a crash no longer forfeits every
        queued point).  Ctrl-C cancels the queue, waits out the running
        points, and re-raises — no worker processes outlive the sweep.
        """
        crashed: List[SweepOutcome] = []
        queue = deque(points)
        window = max(1, workers * 2)
        chunk_size = self._chunk_size(len(points), workers)
        pool = self._new_pool(workers, trace_payload)
        futures: Dict[object, List[SweepOutcome]] = {}
        try:
            while queue or futures:
                while queue and len(futures) < window:
                    batch: List[SweepOutcome] = []
                    while queue and len(batch) < chunk_size:
                        if (self.breaker is not None
                                and self.breaker.state != "closed"
                                and (futures or batch)):
                            # The breaker tripped (or a half-open probe
                            # is flying) while work is in flight.
                            # Draining the queue through _admit now
                            # would fail every remaining point fast
                            # before the probe's result can close the
                            # breaker, making recovery unreachable — so
                            # stop dispatching and wait for the
                            # in-flight verdicts instead.  Once the
                            # window drains, _admit resumes: skips count
                            # up to the next probe, and a probe that
                            # succeeds re-closes the breaker for the
                            # rest of the queue.  (Checked per point,
                            # not per batch: an admitted probe must not
                            # drag fail-fast victims along in its own
                            # chunk.)
                            break
                        outcome = queue.popleft()
                        if not self._admit(outcome, metrics, started):
                            continue
                        self._journal_dispatch(outcome)
                        batch.append(outcome)
                    if not batch:
                        break  # breaker paused or fast-failed the queue
                    try:
                        if len(batch) == 1:
                            # Singleton chunks go through run_point
                            # unpacked — the common small-sweep shape,
                            # and the seam tests monkeypatch.
                            future = pool.submit(
                                _worker.run_point,
                                self._point_payload(trace, batch[0],
                                                    record_timeline))
                        else:
                            future = pool.submit(
                                _worker.run_chunk,
                                transport.pack([
                                    self._point_payload(trace, o,
                                                        record_timeline)
                                    for o in batch]))
                    except BrokenProcessPool:
                        # The pool broke before the wait loop saw it;
                        # these points are crash-window victims too.
                        crashed.extend(batch)
                        for _ in batch:
                            self._breaker_failure("WorkerCrashed", metrics)
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = self._new_pool(workers, trace_payload)
                        continue
                    futures[future] = batch
                if not futures:
                    continue  # breaker fast-failed the whole window
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    batch = futures.pop(future)
                    exc = future.exception()
                    if exc is None:
                        for outcome, reply in zip(
                                batch,
                                self._chunk_replies(batch, future.result())):
                            self._finish(outcome, reply,
                                         record_timeline, base_key)
                            self._breaker_record(outcome, metrics)
                            self._note_done(outcome, metrics, started)
                    elif isinstance(exc, BrokenProcessPool):
                        # A worker died.  Every in-flight future on the
                        # pool fails with it, so which point killed the
                        # worker is unknown here — the isolated retry
                        # pass attributes the crash (and splits chunked
                        # batches back into single points).
                        broken = True
                        crashed.extend(batch)
                        for _ in batch:
                            self._breaker_failure("WorkerCrashed", metrics)
                    else:
                        for outcome in batch:
                            outcome.error = SweepError(
                                kind=type(exc).__name__, message=str(exc)
                            )
                            self._breaker_record(outcome, metrics)
                            self._note_done(outcome, metrics, started)
                if broken:
                    # The rest of the window died with the pool; sort
                    # the stragglers (a future may still have finished
                    # cleanly in the meantime) and rebuild.
                    for future, batch in list(futures.items()):
                        if future.done() and future.exception() is None:
                            for outcome, reply in zip(
                                    batch,
                                    self._chunk_replies(batch,
                                                        future.result())):
                                self._finish(outcome, reply,
                                             record_timeline, base_key)
                                self._breaker_record(outcome, metrics)
                                self._note_done(outcome, metrics, started)
                        else:
                            crashed.extend(batch)
                            for _ in batch:
                                self._breaker_failure("WorkerCrashed",
                                                      metrics)
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._new_pool(workers, trace_payload)
        except KeyboardInterrupt:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown()
        return crashed

    @staticmethod
    def _chunk_replies(batch: List[SweepOutcome], result) -> list:
        """Normalize a future's result to one reply dict per point.

        Singleton batches are submitted through ``run_point`` (a bare
        payload dict reply); larger batches through ``run_chunk`` (a
        list of reply dicts in batch order).
        """
        if len(batch) == 1 and isinstance(result, dict):
            return [result]
        return result

    def _retry_crashed(self, trace: Trace, crashed: List[SweepOutcome],
                       trace_payload: bytes, record_timeline: bool,
                       metrics: SweepMetrics, started: float,
                       base_key: str) -> None:
        """Re-execute crash victims one at a time, each on a fresh
        single-worker pool, with seeded bounded exponential backoff —
        so a repeat crash is attributable to exactly one point.  A point
        that kills every isolated worker gets one last
        graceful-degradation rung: an in-process run with chaos specs
        disarmed (no pool to crash); only if that also fails is the
        point declared ``WorkerCrashed``."""
        rng = random.Random(self.retry_seed)
        for outcome in sorted(crashed, key=lambda o: o.index):
            for attempt in range(self.MAX_CRASH_RETRIES):
                _wall.sleep(self._backoff_delay(rng, attempt))
                outcome.retries += 1
                metrics.retries += 1
                if self._isolated_attempt(trace, outcome, trace_payload,
                                          record_timeline, base_key):
                    break
            else:
                if self._inprocess_rescue(trace, outcome, record_timeline,
                                          base_key):
                    outcome.degraded = True
                    metrics.degraded_recoveries += 1
                else:
                    metrics.worker_crashes += 1
                    outcome.error = SweepError(
                        kind="WorkerCrashed",
                        message=f"worker process died simulating this point "
                                f"{outcome.retries} time(s) in isolation "
                                f"(after crashing a shared pool), and the "
                                f"in-process rescue run also failed",
                    )
            self._note_done(outcome, metrics, started)

    def _inprocess_rescue(self, trace: Trace, outcome: SweepOutcome,
                          record_timeline: bool, base_key: str) -> bool:
        """Last degradation rung: run the point in the parent process.

        No pool means nothing left to crash: if the failures were pool
        infrastructure (a poisoned worker image, fork pressure, chaos
        injection) the point completes here; chaos specs stay disarmed,
        so a config that genuinely kills its host raises instead of
        taking the sweep down.  Returns False on any failure — the
        point's verdict stays ``WorkerCrashed``.
        """
        try:
            gpu_key = self._gpu_key(trace, outcome.config)
            point_trace, op_times = self._shared_work(trace, gpu_key)
            op_time = _worker.shared_op_time(
                point_trace, outcome.config.perf_model, op_times, gpu_key)
            outcome.result = _worker.simulate_point(
                point_trace, outcome.config, record_timeline,
                self._hard_deadline(outcome.config), op_time=op_time,
                sanitize=self.sanitize,
                sanitizer_sink=outcome.sanitizer_findings,
                plan_cache=self.plan_cache,
                verify="races" if self.verify else False,
                deadline_soft=self._soft_deadline(outcome.config),
            )
        except Exception:
            outcome.result = None
            return False
        if self.cache is not None and outcome.config.is_serializable:
            key = self.cache.point_key(base_key, outcome.config,
                                       record_timeline)
            self.cache.store(key, outcome.result)
        return True

    def _backoff_delay(self, rng: random.Random, attempt: int) -> float:
        """Jittered exponential backoff, capped at :attr:`MAX_BACKOFF`."""
        return min(self.MAX_BACKOFF,
                   self.retry_backoff * (2 ** attempt) * (0.5 + rng.random()))

    def _isolated_attempt(self, trace: Trace, outcome: SweepOutcome,
                          trace_payload: bytes, record_timeline: bool,
                          base_key: str) -> bool:
        """One retry on a dedicated pool; False when the worker died."""
        with ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker.init_worker,
            initargs=(trace_payload, self._plan_mode()),
        ) as pool:
            future = pool.submit(
                _worker.run_point,
                self._point_payload(trace, outcome, record_timeline))
            try:
                payload = future.result()
            except BrokenProcessPool:
                return False
        self._finish(outcome, payload, record_timeline, base_key)
        return True

    def _run_inproc(self, trace: Trace, points: List[SweepOutcome],
                    record_timeline: bool, metrics: SweepMetrics,
                    started: float, base_key: str) -> None:
        for outcome in points:
            if not self._admit(outcome, metrics, started):
                continue
            self._journal_dispatch(outcome)
            gpu_key = self._gpu_key(trace, outcome.config)
            point_trace, op_times = self._shared_work(trace, gpu_key)
            try:
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                outcome.result = _worker.simulate_point(
                    point_trace, outcome.config, record_timeline,
                    self._hard_deadline(outcome.config), op_time=op_time,
                    sanitize=self.sanitize,
                    sanitizer_sink=outcome.sanitizer_findings,
                    plan_cache=self.plan_cache,
                    verify="races" if self.verify else False,
                    deadline_soft=self._soft_deadline(outcome.config),
                )
                if (self.cache is not None
                        and outcome.config.is_serializable):
                    key = self.cache.point_key(base_key, outcome.config,
                                               record_timeline)
                    self.cache.store(key, outcome.result)
            except Exception as exc:
                # error_record normalizes deadline flavours to the
                # taxonomy kind ("PointTimeout") and keeps any
                # partial-progress detail the exception carries.
                outcome.error = SweepError.from_dict(
                    _worker.error_record(exc))
            self._breaker_record(outcome, metrics)
            self._note_done(outcome, metrics, started)
