"""The parallel sweep service.

:class:`SweepRunner` fans a list of :class:`SimulationConfig` points over a
``concurrent.futures.ProcessPoolExecutor`` (or runs them in-process when
``max_workers <= 1``), with:

* a content-addressed on-disk result cache (:mod:`repro.service.cache`) —
  re-running any figure or sweep returns previously computed points
  instantly;
* shared-work dedup — cross-GPU trace rescaling happens once per
  ``(trace, target GPU)`` in the parent, and performance-model fits happen
  once per worker process instead of once per point;
* extrapolation-plan sharing (:mod:`repro.core.plan`) — points differing
  only in network/topology/fault parameters reuse one cached task-graph
  plan; with a plan directory the parent pre-builds each distinct plan
  once and workers load it from disk;
* graceful degradation — a failing config yields a structured
  :class:`SweepError` (with the worker traceback) instead of killing the
  sweep, and each point runs under an optional wall-clock timeout;
* worker-crash survival — a point whose worker process dies (segfault,
  OOM kill, chaos injection) breaks only its pool, not the sweep: the
  executor is rebuilt and the in-flight points are retried in isolation
  with seeded, bounded exponential backoff; a point that keeps killing
  its worker becomes ``SweepError(kind="WorkerCrashed")`` while every
  other point completes normally;
* live progress through the existing :mod:`repro.engine.hooks` mechanism —
  the runner is a :class:`Hookable` and fires ``sweep_start`` /
  ``sweep_point`` / ``sweep_end`` positions with completed/total counts,
  cache hit-rate, aggregate simulated-events/sec, and an ETA.

Determinism: TrioSim is deterministic and every point is independent, so
parallel execution, in-process execution, and cache replay all produce
bit-identical ``total_time`` values.
"""

from __future__ import annotations

import os
import random
import time as _wall
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.linter import lint_config
from repro.analysis.reporters import render_text
from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.results import SimulationResult
from repro.core.simulator import TrioSim
from repro.engine.hooks import HookCtx, Hookable
from repro.perfmodel.scaling import CrossGPUScaler
from repro.service import worker as _worker
from repro.service.cache import ResultCache, trace_digest
from repro.trace.trace import Trace

#: Hook positions emitted by the runner.
HOOK_SWEEP_START = "sweep_start"
HOOK_SWEEP_POINT = "sweep_point"
HOOK_SWEEP_END = "sweep_end"


@dataclass(frozen=True)
class SweepError:
    """Structured record of one failed sweep point."""

    kind: str        # exception class name, e.g. "PointTimeoutError"
    message: str
    traceback: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "traceback": self.traceback}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepError":
        return cls(**data)


class SweepPointError(RuntimeError):
    """Raised by :meth:`SweepOutcome.unwrap` for a failed point."""

    def __init__(self, error: SweepError):
        super().__init__(f"{error.kind}: {error.message}\n{error.traceback}")
        self.error = error


@dataclass
class SweepOutcome:
    """Result (or failure) of one sweep point, in input order."""

    index: int
    config: SimulationConfig
    label: str = ""
    result: Optional[SimulationResult] = None
    error: Optional[SweepError] = None
    cached: bool = False
    #: Runtime sanitizer findings (dict form) when the runner sanitizes.
    sanitizer_findings: List[dict] = field(default_factory=list)
    #: Isolated re-executions this point needed after its worker died.
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.result is not None

    def unwrap(self) -> SimulationResult:
        """The result, or raise :class:`SweepPointError`."""
        if self.result is None:
            raise SweepPointError(
                self.error or SweepError("Unknown", "point produced no result")
            )
        return self.result

    def to_dict(self) -> dict:
        """JSON-safe summary (the CLI's sweep output codepath)."""
        return {
            "index": self.index,
            "label": self.label,
            "config": (self.config.to_dict()
                       if self.config.is_serializable else None),
            "cached": self.cached,
            "result": self.result.to_dict() if self.result else None,
            "error": self.error.to_dict() if self.error else None,
            "sanitizer_findings": list(self.sanitizer_findings),
            "retries": self.retries,
        }


@dataclass
class SweepMetrics:
    """Live counters surfaced through the progress hooks."""

    total: int = 0
    completed: int = 0
    cache_hits: int = 0
    errors: int = 0
    fresh_events: int = 0     # engine events dispatched for non-cached points
    elapsed: float = 0.0
    retries: int = 0          # isolated re-executions after worker crashes
    worker_crashes: int = 0   # points abandoned as WorkerCrashed
    plan_builds: int = 0      # extrapolator graph builds actually performed
    plan_cache_hits: int = 0  # fresh points served by a cached plan

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    @property
    def events_per_sec(self) -> float:
        return self.fresh_events / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        if not self.completed:
            return float("nan")
        remaining = self.total - self.completed
        return remaining * (self.elapsed / self.completed)

    def detail(self) -> dict:
        return {
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "errors": self.errors,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "plan_builds": self.plan_builds,
            "plan_cache_hits": self.plan_cache_hits,
            "fresh_events": self.fresh_events,
            "events_per_sec": self.events_per_sec,
            "eta_seconds": self.eta_seconds,
            "elapsed": self.elapsed,
        }


class SweepRunner(Hookable):
    """Run many ``(trace, config)`` points fast, cached, and fault-tolerant.

    Parameters
    ----------
    max_workers:
        Process count for the fan-out; ``None`` uses the machine's CPU
        count, and values ``<= 1`` run every point in-process (the
        deterministic baseline — results are bit-identical either way).
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` to
        disable caching.
    timeout:
        Optional per-point wall-clock budget in seconds; an expired point
        becomes a ``PointTimeoutError`` error record.
    hooks:
        Observers registered for the runner's progress positions.
    lint:
        Statically lint every config against the trace *before* any
        simulation is dispatched (on by default).  A point with error
        findings becomes a structured ``LintError`` outcome instead of
        wasting a worker slot on a doomed or nonsensical simulation.
    sanitize:
        Run every simulated point with the runtime sanitizers attached;
        findings land on each outcome's ``sanitizer_findings``.
    verify:
        Deep-verify every point's task graph *before* any simulation is
        dispatched (cycles, dead tasks, mismatched collectives,
        memory-infeasible schedules — the ``DV`` rules) and run the
        determinism race detectors (``RC`` rules) during each point.  A
        point whose graph fails verification becomes a structured
        ``VerifyError`` outcome, mirroring ``LintError``; points sharing
        an extrapolation plan share one verification, and the verified
        plans land in the plan cache so the sweep itself reuses them.
        Race findings ride each outcome's ``sanitizer_findings``
        (distinguishable by their ``RC``/``DV`` rule ids).
    retry_seed:
        Seed of the crash-retry backoff jitter, so retry timing (the only
        nondeterminism a crash introduces) is reproducible.
    retry_backoff:
        Base of the bounded exponential backoff between isolated retries
        of a crashed point, in seconds.
    plan_cache:
        Extrapolation-plan sharing (see :mod:`repro.core.plan`; on by
        default).  ``True`` keeps an in-memory :class:`PlanCache` in the
        parent (in-process points) plus a private one per worker; a
        directory path (or a rooted :class:`PlanCache`) additionally
        persists plans, letting the parent pre-build each distinct plan
        once and every worker load it; ``False``/``None`` disables the
        cache and every point re-extrapolates.  Results are bit-identical
        in all three modes.
    """

    #: Bound on memoized (rescaled trace, fitted models) entries.
    SHARED_WORK_LIMIT = 64

    #: Isolated re-executions granted to a point whose worker died; a
    #: point still crashing after these becomes ``WorkerCrashed``.
    MAX_CRASH_RETRIES = 2

    #: Ceiling on any single backoff sleep, seconds.
    MAX_BACKOFF = 2.0

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Union[ResultCache, str, Path, None] = None,
                 timeout: Optional[float] = None, hooks: Sequence = (),
                 lint: bool = True, sanitize: bool = False,
                 verify: bool = False,
                 retry_seed: int = 0, retry_backoff: float = 0.05,
                 plan_cache: Union[PlanCache, str, Path, bool, None] = True):
        super().__init__()
        self.max_workers = max_workers if max_workers is not None \
            else (os.cpu_count() or 1)
        self.cache = (ResultCache(cache)
                      if isinstance(cache, (str, Path)) else cache)
        if plan_cache is True:
            self.plan_cache: Optional[PlanCache] = PlanCache()
        elif isinstance(plan_cache, (str, Path)):
            self.plan_cache = PlanCache(root=plan_cache)
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            self.plan_cache = None
        self.timeout = timeout
        self.lint = lint
        self.sanitize = sanitize
        self.verify = verify
        self.retry_seed = retry_seed
        self.retry_backoff = retry_backoff
        self.last_metrics: Optional[SweepMetrics] = None
        # (trace digest, target gpu) -> [prepared Trace, {perf_model: OpTimeModel}]
        # An LRU shared across run() calls, so per-point predict() loops
        # (the experiments harness) still rescale and fit exactly once.
        self._shared: "OrderedDict[str, list]" = OrderedDict()
        for hook in hooks:
            self.accept_hook(hook)

    # ------------------------------------------------------------------
    # Shared-work preparation
    # ------------------------------------------------------------------
    @staticmethod
    def _gpu_key(trace: Trace, config: SimulationConfig) -> str:
        """The rescaling target this config needs ("native" = none)."""
        target = config.gpu
        if target is not None and target.upper() != trace.gpu_name.upper():
            return target.upper()
        return "native"

    def _shared_work(self, trace: Trace, gpu_key: str) -> list:
        """The memoized ``[prepared trace, op-time models]`` slot for
        ``(trace, target GPU)`` — rescaling runs at most once per pair."""
        slot_key = f"{trace_digest(trace)}:{gpu_key}"
        slot = self._shared.get(slot_key)
        if slot is None:
            if gpu_key == "native":
                prepared = trace
            else:
                scaler = CrossGPUScaler.between(trace.gpu_name, gpu_key)
                prepared = scaler.convert_trace(trace)
            slot = [prepared, {}]
            self._shared[slot_key] = slot
            if len(self._shared) > self.SHARED_WORK_LIMIT:
                self._shared.popitem(last=False)
        else:
            self._shared.move_to_end(slot_key)
        return slot

    def _prepare_traces(self, trace: Trace, points) -> Dict[str, Trace]:
        """Rescale *trace* once per distinct target GPU among *points*."""
        prepared: Dict[str, Trace] = {}
        for point in points:
            gpu_key = self._gpu_key(trace, point.config)
            if gpu_key not in prepared:
                prepared[gpu_key] = self._shared_work(trace, gpu_key)[0]
        return prepared

    def _plan_mode(self) -> Optional[str]:
        """The worker-initializer encoding of this runner's plan cache:
        ``None`` disabled, ``""`` private in-memory, else a shared
        directory."""
        if self.plan_cache is None:
            return None
        if self.plan_cache.root is not None:
            return str(self.plan_cache.root)
        return ""

    def _prepare_plans(self, trace: Trace, points,
                       metrics: "SweepMetrics") -> None:
        """Build each distinct plan once in the parent (disk-backed
        caches only), so pool workers load instead of re-extrapolating.

        Preparation is best-effort: a config whose plan can't even be
        built will fail identically — with a proper error record — when
        its point runs.
        """
        if self.plan_cache is None or self.plan_cache.root is None:
            return
        seen = set()
        for outcome in points:
            try:
                gpu_key = self._gpu_key(trace, outcome.config)
                point_trace, op_times = self._shared_work(trace, gpu_key)
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                sim = TrioSim(point_trace, outcome.config,
                              record_timeline=False, op_time=op_time)
                key = sim.plan_key()
                if key in seen:
                    continue
                seen.add(key)
                _plan, source = self.plan_cache.get_or_build(
                    key, sim.build_plan)
                if source == "built":
                    metrics.plan_builds += 1
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, trace: Trace, configs: Sequence[SimulationConfig],
            record_timeline: bool = False,
            labels: Optional[Sequence[str]] = None) -> List[SweepOutcome]:
        """Simulate every config against *trace*; outcomes in input order."""
        configs = list(configs)
        labels = list(labels) if labels is not None else [""] * len(configs)
        if len(labels) != len(configs):
            raise ValueError("labels must match configs in length")
        started = _wall.perf_counter()
        metrics = SweepMetrics(total=len(configs))
        self.last_metrics = metrics
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_START, 0.0, item=None, detail=metrics.detail())
        )

        outcomes = [
            SweepOutcome(index=i, config=cfg, label=labels[i])
            for i, cfg in enumerate(configs)
        ]
        base_key = trace_digest(trace) if self.cache is not None else ""

        # Lint pass: reject statically-broken points before dispatching
        # any simulation work for them.
        survivors = outcomes
        if self.lint:
            survivors = []
            for outcome in outcomes:
                report = lint_config(outcome.config, trace=trace)
                if report.has_errors:
                    outcome.error = SweepError(
                        kind="LintError",
                        message="; ".join(str(f) for f in report.errors),
                        # Findings stand in for a traceback: the point never
                        # ran, but the error record must still explain why.
                        traceback=render_text(report, source="lint"),
                    )
                    self._note_done(outcome, metrics, started)
                else:
                    survivors.append(outcome)

        # Verify pass: deep-verify each distinct task graph once before
        # dispatching any simulation work built on it.
        if self.verify:
            survivors = self._verify_points(trace, survivors, metrics,
                                            started)

        # Cache pass: satisfy points without any simulation.
        pending: List[SweepOutcome] = []
        for outcome in survivors:
            hit = None
            if self.cache is not None and outcome.config.is_serializable:
                key = self.cache.point_key(base_key, outcome.config,
                                           record_timeline)
                hit = self.cache.load(key)
            if hit is not None:
                outcome.result = hit
                outcome.cached = True
                metrics.cache_hits += 1
                self._note_done(outcome, metrics, started)
            else:
                pending.append(outcome)

        parallel = [o for o in pending if o.config.is_serializable]
        inproc = [o for o in pending if not o.config.is_serializable]
        workers = min(self.max_workers, len(parallel))
        if workers <= 1:
            inproc = pending
            parallel = []

        if parallel:
            self._run_parallel(trace, parallel, workers, record_timeline,
                               metrics, started, base_key)
        if inproc:
            self._run_inproc(trace, inproc, record_timeline, metrics,
                             started, base_key)

        metrics.elapsed = _wall.perf_counter() - started
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_END, 0.0, item=outcomes,
                    detail=metrics.detail())
        )
        return outcomes

    def _verify_points(self, trace: Trace, points: List[SweepOutcome],
                       metrics: SweepMetrics,
                       started: float) -> List[SweepOutcome]:
        """Pre-dispatch deep verification, deduplicated by plan key.

        Points differing only in execute-time parameters share an
        extrapolation plan, so a 16-point network sweep verifies one
        graph, not sixteen; the built plans land in the plan cache and
        the sweep itself reuses them.  A config whose graph can't even
        be built is passed through — it will fail identically, with a
        proper error record, when its point runs.
        """
        from repro.analysis.verifier import verify_plan

        verified: Dict[str, object] = {}
        survivors: List[SweepOutcome] = []
        for outcome in points:
            report = None
            try:
                gpu_key = self._gpu_key(trace, outcome.config)
                point_trace, op_times = self._shared_work(trace, gpu_key)
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                sim = TrioSim(point_trace, outcome.config,
                              record_timeline=False, op_time=op_time)
                key = sim.plan_key()
                report = verified.get(key)
                if report is None:
                    if self.plan_cache is not None:
                        plan, source = self.plan_cache.get_or_build(
                            key, sim.build_plan)
                        if source == "built":
                            metrics.plan_builds += 1
                    else:
                        plan = sim.build_plan()
                    report = verify_plan(plan, config=outcome.config)
                    verified[key] = report
            except Exception:
                report = None
            if report is not None and report.has_errors:
                outcome.error = SweepError(
                    kind="VerifyError",
                    message="; ".join(str(f) for f in report.errors),
                    traceback=render_text(report, source="verify"),
                )
                self._note_done(outcome, metrics, started)
            else:
                survivors.append(outcome)
        return survivors

    def _note_done(self, outcome: SweepOutcome, metrics: SweepMetrics,
                   started: float) -> None:
        metrics.completed += 1
        if outcome.error is not None:
            metrics.errors += 1
        elif not outcome.cached and outcome.result is not None:
            metrics.fresh_events += outcome.result.events
            source = outcome.result.profile.get("plan_source")
            if source == "built":
                metrics.plan_builds += 1
            elif source in ("memory", "disk"):
                metrics.plan_cache_hits += 1
        metrics.elapsed = _wall.perf_counter() - started
        self.invoke_hooks(
            HookCtx(HOOK_SWEEP_POINT, 0.0, item=outcome,
                    detail=metrics.detail())
        )

    def _finish(self, outcome: SweepOutcome, payload: dict,
                record_timeline: bool, base_key: str) -> None:
        """Apply a worker reply to its outcome and cache fresh results."""
        if payload["ok"]:
            outcome.result = SimulationResult.from_dict(payload["result"])
            outcome.sanitizer_findings = payload.get("sanitizer", [])
            if self.cache is not None and outcome.config.is_serializable:
                key = self.cache.point_key(base_key, outcome.config,
                                           record_timeline)
                self.cache.store(key, outcome.result)
        else:
            outcome.error = SweepError.from_dict(payload["error"])

    def _point_payload(self, trace: Trace, outcome: SweepOutcome,
                       record_timeline: bool) -> dict:
        return {
            "trace_key": self._gpu_key(trace, outcome.config),
            "config": outcome.config.to_dict(),
            "record_timeline": record_timeline,
            "timeout": self.timeout,
            "sanitize": self.sanitize,
            # The static tier already ran once per distinct plan in
            # _verify_points; workers only need the race detectors.
            "verify": "races" if self.verify else False,
        }

    def _run_parallel(self, trace: Trace, points: List[SweepOutcome],
                      workers: int, record_timeline: bool,
                      metrics: SweepMetrics, started: float,
                      base_key: str) -> None:
        prepared = self._prepare_traces(trace, points)
        trace_dicts = {
            gpu_key: scaled.to_dict() for gpu_key, scaled in prepared.items()
        }
        self._prepare_plans(trace, points, metrics)
        crashed = self._parallel_wave(trace, points, workers, trace_dicts,
                                      record_timeline, metrics, started,
                                      base_key)
        if crashed:
            self._retry_crashed(trace, crashed, trace_dicts,
                                record_timeline, metrics, started, base_key)

    def _parallel_wave(self, trace: Trace, points: List[SweepOutcome],
                       workers: int, trace_dicts: dict,
                       record_timeline: bool, metrics: SweepMetrics,
                       started: float, base_key: str) -> List[SweepOutcome]:
        """Fan *points* over one pool; returns the points whose futures
        died with the pool (crash victims and collateral, unattributed)."""
        crashed: List[SweepOutcome] = []
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker.init_worker,
            initargs=(trace_dicts, self._plan_mode()),
        ) as pool:
            futures = {
                pool.submit(_worker.run_point,
                            self._point_payload(trace, o, record_timeline)): o
                for o in points
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = futures[future]
                    exc = future.exception()
                    if exc is None:
                        self._finish(outcome, future.result(),
                                     record_timeline, base_key)
                        self._note_done(outcome, metrics, started)
                    elif isinstance(exc, BrokenProcessPool):
                        # A worker died.  Every in-flight future on the
                        # pool fails with it, so which point killed the
                        # worker is unknown here — the isolated retry
                        # pass attributes the crash.
                        crashed.append(outcome)
                    else:
                        outcome.error = SweepError(
                            kind=type(exc).__name__, message=str(exc)
                        )
                        self._note_done(outcome, metrics, started)
        return crashed

    def _retry_crashed(self, trace: Trace, crashed: List[SweepOutcome],
                       trace_dicts: dict, record_timeline: bool,
                       metrics: SweepMetrics, started: float,
                       base_key: str) -> None:
        """Re-execute crash victims one at a time, each on a fresh
        single-worker pool, with seeded bounded exponential backoff —
        so a repeat crash is attributable to exactly one point."""
        rng = random.Random(self.retry_seed)
        for outcome in sorted(crashed, key=lambda o: o.index):
            for attempt in range(self.MAX_CRASH_RETRIES):
                _wall.sleep(self._backoff_delay(rng, attempt))
                outcome.retries += 1
                metrics.retries += 1
                if self._isolated_attempt(trace, outcome, trace_dicts,
                                          record_timeline, base_key):
                    break
            else:
                metrics.worker_crashes += 1
                outcome.error = SweepError(
                    kind="WorkerCrashed",
                    message=f"worker process died simulating this point "
                            f"{outcome.retries} time(s) in isolation "
                            f"(after crashing a shared pool)",
                )
            self._note_done(outcome, metrics, started)

    def _backoff_delay(self, rng: random.Random, attempt: int) -> float:
        """Jittered exponential backoff, capped at :attr:`MAX_BACKOFF`."""
        return min(self.MAX_BACKOFF,
                   self.retry_backoff * (2 ** attempt) * (0.5 + rng.random()))

    def _isolated_attempt(self, trace: Trace, outcome: SweepOutcome,
                          trace_dicts: dict, record_timeline: bool,
                          base_key: str) -> bool:
        """One retry on a dedicated pool; False when the worker died."""
        with ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker.init_worker,
            initargs=(trace_dicts, self._plan_mode()),
        ) as pool:
            future = pool.submit(
                _worker.run_point,
                self._point_payload(trace, outcome, record_timeline))
            try:
                payload = future.result()
            except BrokenProcessPool:
                return False
        self._finish(outcome, payload, record_timeline, base_key)
        return True

    def _run_inproc(self, trace: Trace, points: List[SweepOutcome],
                    record_timeline: bool, metrics: SweepMetrics,
                    started: float, base_key: str) -> None:
        for outcome in points:
            gpu_key = self._gpu_key(trace, outcome.config)
            point_trace, op_times = self._shared_work(trace, gpu_key)
            try:
                op_time = _worker.shared_op_time(
                    point_trace, outcome.config.perf_model, op_times,
                    gpu_key,
                )
                outcome.result = _worker.simulate_point(
                    point_trace, outcome.config, record_timeline,
                    self.timeout, op_time=op_time, sanitize=self.sanitize,
                    sanitizer_sink=outcome.sanitizer_findings,
                    plan_cache=self.plan_cache,
                    verify="races" if self.verify else False,
                )
                if (self.cache is not None
                        and outcome.config.is_serializable):
                    key = self.cache.point_key(base_key, outcome.config,
                                               record_timeline)
                    self.cache.store(key, outcome.result)
            except Exception as exc:
                import traceback as _tb

                outcome.error = SweepError(
                    kind=type(exc).__name__, message=str(exc),
                    traceback=_tb.format_exc(),
                )
            self._note_done(outcome, metrics, started)
