"""GPU and interconnect specifications for the paper's platforms.

The numbers are public datasheet values.  Like the paper, we distinguish
*theoretical* link bandwidth from *achieved* bandwidth: the paper measures
achieved bandwidth with nccl-tests and feeds that to the simulator; we
apply an ``achieved_fraction`` derating per interconnect generation instead
(the oracle "hardware" and the simulator both use the achieved value, just
as the paper uses one set of measured throughputs per platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

GIGA = 1e9
TERA = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant parameters of one GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"A100"``.
    matmul_tflops:
        Dense tensor-core throughput for TF32 matmul/convolution (TFLOP/s).
        PyTorch dispatches conv and linear layers here on Ampere+.
    vector_tflops:
        FP32 CUDA-core throughput for elementwise/normalization ops.
    mem_bandwidth:
        HBM/GDDR bandwidth in bytes per second.
    mem_capacity:
        Device memory in bytes (used for out-of-memory checks).
    kernel_overhead:
        Fixed per-kernel launch + scheduling cost in seconds, the floor on
        tiny-operator execution time.
    max_efficiency:
        Fraction of peak matmul throughput achievable by large,
        well-shaped GEMMs (cuDNN/cuBLAS never reach 100%).
    """

    name: str
    matmul_tflops: float
    vector_tflops: float
    mem_bandwidth: float
    mem_capacity: float
    kernel_overhead: float = 4e-6
    max_efficiency: float = 0.62

    @property
    def matmul_flops(self) -> float:
        """Peak dense matmul throughput in FLOP/s."""
        return self.matmul_tflops * TERA

    @property
    def vector_flops(self) -> float:
        """Peak vector FP32 throughput in FLOP/s."""
        return self.vector_tflops * TERA


@dataclass(frozen=True)
class InterconnectSpec:
    """Parameters of one GPU-GPU link technology.

    ``theoretical_bandwidth`` is the per-direction datasheet value;
    ``achieved_fraction`` derates it to the nccl-tests-style measured value
    actually used in simulation (paper §5: "the theoretical bandwidth of the
    links is not usually useful").
    """

    name: str
    theoretical_bandwidth: float
    achieved_fraction: float
    latency: float

    @property
    def achieved_bandwidth(self) -> float:
        """Measured (derated) bandwidth in bytes per second."""
        return self.theoretical_bandwidth * self.achieved_fraction


GPU_SPECS: Dict[str, GPUSpec] = {
    "A40": GPUSpec(
        name="A40",
        matmul_tflops=74.8,     # TF32 tensor core, dense
        vector_tflops=37.4,     # FP32 CUDA core
        mem_bandwidth=696 * GIGA,
        mem_capacity=48 * GIGA,
        kernel_overhead=4.5e-6,
        max_efficiency=0.60,
    ),
    "A100": GPUSpec(
        name="A100",
        matmul_tflops=156.0,    # TF32 tensor core, dense
        vector_tflops=19.5,
        mem_bandwidth=2039 * GIGA,
        mem_capacity=80 * GIGA,
        kernel_overhead=4.0e-6,
        max_efficiency=0.62,
    ),
    "H100": GPUSpec(
        name="H100",
        matmul_tflops=494.5,    # TF32 tensor core, dense
        vector_tflops=66.9,
        mem_bandwidth=3350 * GIGA,
        mem_capacity=80 * GIGA,
        kernel_overhead=3.5e-6,
        max_efficiency=0.64,
    ),
}

INTERCONNECTS: Dict[str, InterconnectSpec] = {
    # PCIe 4.0 x16, per direction.
    "pcie4": InterconnectSpec("pcie4", 32 * GIGA, 0.65, 4e-6),
    # NVLink 3 (A100): per-pair aggregate in a 4-GPU fully linked board.
    "nvlink3": InterconnectSpec("nvlink3", 300 * GIGA, 0.78, 1.5e-6),
    # NVLink 4 + NVSwitch (H100 HGX): any-to-any.
    "nvlink4": InterconnectSpec("nvlink4", 450 * GIGA, 0.80, 1.2e-6),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by (case-insensitive) name."""
    key = name.upper()
    if key not in GPU_SPECS:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPU_SPECS)}")
    return GPU_SPECS[key]


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up an interconnect spec by name."""
    key = name.lower()
    if key not in INTERCONNECTS:
        raise KeyError(
            f"unknown interconnect {name!r}; known: {sorted(INTERCONNECTS)}"
        )
    return INTERCONNECTS[key]


@dataclass(frozen=True)
class Platform:
    """A validation platform: identical GPUs joined by one interconnect.

    ``topology`` names a builder in :mod:`repro.network.topology` (e.g.
    ``"ring"``, ``"switch"``); the paper's platforms use a ring of PCIe/
    NVLink links (P1, P2) and an NVSwitch-style full crossbar (P3).
    """

    name: str
    gpu: GPUSpec
    num_gpus: int
    interconnect: InterconnectSpec
    topology: str

    @property
    def gpus(self) -> List[GPUSpec]:
        return [self.gpu] * self.num_gpus

    @property
    def link_bandwidth(self) -> float:
        return self.interconnect.achieved_bandwidth

    @property
    def link_latency(self) -> float:
        return self.interconnect.latency


def platform_p1() -> Platform:
    """P1: 2x NVIDIA A40 connected with PCIe (paper §5)."""
    return Platform("P1", get_gpu("A40"), 2, get_interconnect("pcie4"), "ring")


def platform_p2(num_gpus: int = 4) -> Platform:
    """P2: 4x NVIDIA A100 connected with NVLink (paper §5).

    ``num_gpus`` may be lowered to 2 for the paper's 2-GPU pipeline runs.
    """
    if not 1 <= num_gpus <= 4:
        raise ValueError("P2 has at most 4 GPUs")
    return Platform("P2", get_gpu("A100"), num_gpus, get_interconnect("nvlink3"), "ring")


def platform_p3() -> Platform:
    """P3: 8x NVIDIA H100 connected with NVLink/NVSwitch (paper §5)."""
    return Platform("P3", get_gpu("H100"), 8, get_interconnect("nvlink4"), "switch")


def custom_platform(
    gpu: str,
    num_gpus: int,
    interconnect: str = "nvlink3",
    topology: str = "ring",
    name: str = "custom",
) -> Platform:
    """Build an arbitrary homogeneous platform (for case studies)."""
    return Platform(name, get_gpu(gpu), num_gpus, get_interconnect(interconnect), topology)
