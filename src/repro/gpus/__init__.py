"""GPU and interconnect specification database.

Supplies the hardware parameters TrioSim and the hardware oracle share:
peak math throughput, memory bandwidth, and link characteristics for the
paper's three platforms (P1 = 2x A40 over PCIe, P2 = 4x A100 over NVLink,
P3 = 8x H100 over NVLink), plus the derating factors that stand in for the
paper's nccl-tests achieved-bandwidth measurements.
"""

from repro.gpus.specs import (
    GPU_SPECS,
    INTERCONNECTS,
    GPUSpec,
    InterconnectSpec,
    get_gpu,
    get_interconnect,
    platform_p1,
    platform_p2,
    platform_p3,
)

__all__ = [
    "GPU_SPECS",
    "GPUSpec",
    "INTERCONNECTS",
    "InterconnectSpec",
    "get_gpu",
    "get_interconnect",
    "platform_p1",
    "platform_p2",
    "platform_p3",
]
