"""Hierarchical AllReduce for multi-node systems.

The standard three-phase schedule for clusters of GPU nodes (fast NVLink
inside a node, slower fabric between nodes):

1. **intra-node reduce-scatter** — each node's GPUs shard-reduce locally;
2. **inter-node AllReduce** — GPU ``i`` of every node AllReduces shard
   ``i`` with its peers across nodes (rails);
3. **intra-node all-gather** — each node reassembles the full buffer.

Only ``nbytes / gpus_per_node`` crosses the slow inter-node fabric per
rail, which is why this beats a flat ring whenever inter-node bandwidth is
the bottleneck.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.collectives.ring import ring_all_gather, ring_all_reduce, ring_reduce_scatter
from repro.core.taskgraph import SimTask, TaskGraphSimulator


def hierarchical_all_reduce(sim: TaskGraphSimulator,
                            node_groups: Sequence[Sequence[str]],
                            nbytes: float,
                            deps: Sequence[SimTask] = (),
                            tag: str = "hier_allreduce") -> List[SimTask]:
    """AllReduce *nbytes* across all GPUs of *node_groups*.

    ``node_groups`` is a list of per-node GPU name lists; all nodes must
    have the same GPU count.  Returns the tasks completing the final
    intra-node all-gather.
    """
    num_nodes = len(node_groups)
    if num_nodes == 0:
        raise ValueError("need at least one node")
    per_node = len(node_groups[0])
    if any(len(group) != per_node for group in node_groups):
        raise ValueError("all nodes must have the same GPU count")
    if num_nodes == 1:
        return ring_all_reduce(sim, node_groups[0], nbytes, deps=deps, tag=tag)
    if per_node == 1:
        flat = [group[0] for group in node_groups]
        return ring_all_reduce(sim, flat, nbytes, deps=deps, tag=tag)

    # Phase 1: intra-node reduce-scatter (concurrent across nodes).
    scattered: List[List[SimTask]] = []
    for node, group in enumerate(node_groups):
        scattered.append(ring_reduce_scatter(
            sim, group, nbytes, deps=deps, tag=f"{tag}.rs.n{node}"
        ))
    phase1 = [task for tasks in scattered for task in tasks]

    # Phase 2: inter-node AllReduce per rail (GPU i across all nodes),
    # each rail carrying its 1/per_node shard.
    rails_done: List[SimTask] = []
    for rail in range(per_node):
        rail_gpus = [group[rail] for group in node_groups]
        rails_done.extend(ring_all_reduce(
            sim, rail_gpus, nbytes / per_node, deps=phase1,
            tag=f"{tag}.rail{rail}",
        ))

    # Phase 3: intra-node all-gather.
    finished: List[SimTask] = []
    for node, group in enumerate(node_groups):
        finished.extend(ring_all_gather(
            sim, group, nbytes, deps=rails_done, tag=f"{tag}.ag.n{node}"
        ))
    return finished
