"""Collective-scheme dispatch.

The extrapolators call :func:`all_reduce` with the configured scheme name
so users can switch AllReduce algorithms without touching parallelism
code — the extensibility the paper claims for "collective communication
schemes".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.collectives.hierarchical import hierarchical_all_reduce
from repro.collectives.ring import ring_all_reduce
from repro.collectives.tree import tree_all_reduce
from repro.core.taskgraph import SimTask, TaskGraphSimulator

SCHEMES = ("ring", "tree", "hierarchical")


def all_reduce(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
               deps: Sequence[SimTask] = (), tag: str = "allreduce",
               scheme: str = "ring",
               node_groups: Optional[Sequence[Sequence[str]]] = None
               ) -> List[SimTask]:
    """AllReduce *nbytes* across *gpus* with the chosen algorithm.

    ``hierarchical`` requires ``node_groups`` (per-node GPU lists whose
    concatenation equals *gpus*).
    """
    if scheme == "ring":
        return ring_all_reduce(sim, gpus, nbytes, deps=deps, tag=tag)
    if scheme == "tree":
        return tree_all_reduce(sim, gpus, nbytes, deps=deps, tag=tag)
    if scheme == "hierarchical":
        if node_groups is None:
            raise ValueError("hierarchical AllReduce needs node_groups")
        flat = [gpu for group in node_groups for gpu in group]
        if sorted(flat) != sorted(gpus):
            raise ValueError("node_groups must partition the GPU set")
        return hierarchical_all_reduce(sim, node_groups, nbytes,
                                       deps=deps, tag=tag)
    raise ValueError(f"unknown collective scheme {scheme!r}; known: {SCHEMES}")
