"""Ring-based collective task generators.

Each generator appends transfer tasks to a
:class:`~repro.core.taskgraph.TaskGraphSimulator` implementing one
NCCL-style collective over an ordered ring of GPUs, and returns the tasks
whose completion marks the collective's end (for dependency chaining).

The ring AllReduce follows the classic 2(n-1)-step schedule (paper §2.1):
n-1 reduce-scatter steps then n-1 all-gather steps, every device sending
one ``nbytes/n`` chunk to its right neighbour per step.  Steps are chained
by dependencies; transfers within a step run concurrently and share links
according to the network model.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.taskgraph import SimTask, TaskGraphSimulator


def _rounds(sim: TaskGraphSimulator, gpus: Sequence[str], chunk: float,
            num_rounds: int, deps: Sequence[SimTask], tag: str) -> List[SimTask]:
    """Run *num_rounds* neighbour-exchange rounds; returns the last round.

    Rounds are joined through a zero-cost barrier so the dependency count
    stays O(n) per round instead of O(n^2) — at hundreds of GPUs the edge
    count would otherwise dominate simulation time.
    """
    n = len(gpus)
    prev: Sequence[SimTask] = deps
    for step in range(num_rounds):
        if step > 0 or len(prev) > n:
            prev = [sim.add_barrier(f"{tag}.step{step}.sync", deps=prev)]
        current = [
            sim.add_transfer(
                f"{tag}.step{step}.{gpus[i]}",
                gpus[i],
                gpus[(i + 1) % n],
                chunk,
                deps=prev,
                collective=tag,
            )
            for i in range(n)
        ]
        prev = current
    return list(prev)


def ring_all_reduce(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                    deps: Sequence[SimTask] = (), tag: str = "allreduce") -> List[SimTask]:
    """AllReduce *nbytes* across *gpus*; returns the completing tasks."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    return _rounds(sim, gpus, nbytes / n, 2 * (n - 1), deps, tag)


def ring_reduce_scatter(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                        deps: Sequence[SimTask] = (),
                        tag: str = "reduce_scatter") -> List[SimTask]:
    """Reduce-scatter: each GPU ends with one reduced ``nbytes/n`` shard."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    return _rounds(sim, gpus, nbytes / n, n - 1, deps, tag)


def ring_all_gather(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                    deps: Sequence[SimTask] = (),
                    tag: str = "allgather") -> List[SimTask]:
    """All-gather shards into a full *nbytes* buffer on every GPU."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    return _rounds(sim, gpus, nbytes / n, n - 1, deps, tag)


def ring_reduce(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                root: int = 0, deps: Sequence[SimTask] = (),
                tag: str = "reduce") -> List[SimTask]:
    """Reduce to ``gpus[root]``: n-1 pipelined hops around the ring."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    prev: Sequence[SimTask] = deps
    # Partial sums flow around the ring towards the root, one hop per
    # step: root+1 -> root+2 -> ... -> root.
    for step in range(n - 1):
        src = gpus[(root + 1 + step) % n]
        dst = gpus[(root + 2 + step) % n]
        task = sim.add_transfer(
            f"{tag}.step{step}.{src}", src, dst, nbytes, deps=prev, collective=tag
        )
        prev = [task]
    return list(prev)


def ring_broadcast(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                   root: int = 0, deps: Sequence[SimTask] = (),
                   tag: str = "broadcast") -> List[SimTask]:
    """Broadcast from ``gpus[root]``: pipelined hops around the ring."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    prev: Sequence[SimTask] = deps
    tasks = []
    for step in range(n - 1):
        src = gpus[(root + step) % n]
        dst = gpus[(root + step + 1) % n]
        task = sim.add_transfer(
            f"{tag}.step{step}.{src}", src, dst, nbytes, deps=prev, collective=tag
        )
        prev = [task]
        tasks.append(task)
    return [tasks[-1]]


def ring_scatter(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                 root: int = 0, deps: Sequence[SimTask] = (),
                 tag: str = "scatter") -> List[SimTask]:
    """Scatter ``nbytes/n`` shards from the root to every other GPU."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    chunk = nbytes / n
    tasks = [
        sim.add_transfer(
            f"{tag}.{gpus[i]}", gpus[root], gpus[i], chunk, deps=deps, collective=tag
        )
        for i in range(n)
        if i != root
    ]
    return tasks


def ring_gather(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                root: int = 0, deps: Sequence[SimTask] = (),
                tag: str = "gather") -> List[SimTask]:
    """Gather ``nbytes/n`` shards from every GPU onto the root."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    chunk = nbytes / n
    tasks = [
        sim.add_transfer(
            f"{tag}.{gpus[i]}", gpus[i], gpus[root], chunk, deps=deps, collective=tag
        )
        for i in range(n)
        if i != root
    ]
    return tasks
