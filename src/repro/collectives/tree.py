"""Tree-based collective task generators.

NCCL switches between ring and tree algorithms by message size: rings
saturate bandwidth on large buffers, trees win on latency for small ones
(2 log2(n) hops instead of 2(n-1) steps).  TrioSim's extrapolators take a
``collective_scheme`` so users can explore that trade-off (paper §4.3:
"TrioSim supports extending ... collective communication schemes").

The tree AllReduce here is the classic binomial reduce-to-root followed by
a binomial broadcast; each level's transfers run concurrently and carry
the full buffer.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.taskgraph import SimTask, TaskGraphSimulator


def _levels(n: int) -> int:
    levels = 0
    while (1 << levels) < n:
        levels += 1
    return levels


def tree_reduce(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                root: int = 0, deps: Sequence[SimTask] = (),
                tag: str = "tree_reduce") -> List[SimTask]:
    """Binomial-tree reduce onto ``gpus[root]``; returns the final tasks.

    Level ``k`` pairs ranks ``2^k`` apart (relative to the root): the
    higher rank of each pair sends its partial sum to the lower.
    """
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    prev: Sequence[SimTask] = deps
    # rank r's position relative to the root
    rel = lambda r: (r - root) % n
    for level in range(_levels(n)):
        stride = 1 << level
        tasks = []
        for r in range(n):
            pos = rel(r)
            if pos % (2 * stride) == stride and pos < n:
                dst_pos = pos - stride
                dst = gpus[(dst_pos + root) % n]
                tasks.append(sim.add_transfer(
                    f"{tag}.l{level}.{gpus[r]}", gpus[r], dst, nbytes,
                    deps=prev, collective=tag,
                ))
        if tasks:
            prev = tasks
    return list(prev)


def tree_broadcast(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                   root: int = 0, deps: Sequence[SimTask] = (),
                   tag: str = "tree_broadcast") -> List[SimTask]:
    """Binomial-tree broadcast from ``gpus[root]``; returns the leaf-level
    tasks (the collective's completion)."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    prev: Sequence[SimTask] = deps
    levels = _levels(n)
    rel = lambda r: (r - root) % n
    last_level: List[SimTask] = []
    for level in range(levels - 1, -1, -1):
        stride = 1 << level
        tasks = []
        for r in range(n):
            pos = rel(r)
            if pos % (2 * stride) == 0 and pos + stride < n:
                dst = gpus[(pos + stride + root) % n]
                tasks.append(sim.add_transfer(
                    f"{tag}.l{level}.{gpus[r]}", gpus[r], dst, nbytes,
                    deps=prev, collective=tag,
                ))
        if tasks:
            prev = tasks
            last_level = tasks
    return list(last_level or prev)


def tree_all_reduce(sim: TaskGraphSimulator, gpus: Sequence[str], nbytes: float,
                    deps: Sequence[SimTask] = (),
                    tag: str = "tree_allreduce") -> List[SimTask]:
    """Reduce-then-broadcast AllReduce: 2 log2(n) latency-bound levels,
    each moving the full buffer (bandwidth-suboptimal vs the ring)."""
    n = len(gpus)
    if n <= 1 or nbytes <= 0:
        return [sim.add_barrier(f"{tag}.noop", deps=deps)]
    reduced = tree_reduce(sim, gpus, nbytes, root=0, deps=deps,
                          tag=f"{tag}.reduce")
    return tree_broadcast(sim, gpus, nbytes, root=0, deps=reduced,
                          tag=f"{tag}.bcast")
