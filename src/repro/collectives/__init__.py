"""NCCL-style collective communication, expressed as simulation tasks.

The trace extrapolator inserts these when GPUs must synchronize: ring
AllReduce for gradient synchronization (data parallelism), ring AllGather
for output collection (tensor parallelism), plus broadcast / reduce /
scatter / gather primitives.  Every collective is generated as a sequence
of point-to-point transfer tasks over the simulated network — the paper's
"recreates the behavior of the open-sourced NCCL implementation as part of
the extrapolation process".
"""

from repro.collectives.dispatch import SCHEMES, all_reduce
from repro.collectives.hierarchical import hierarchical_all_reduce
from repro.collectives.tree import tree_all_reduce, tree_broadcast, tree_reduce
from repro.collectives.ring import (
    ring_all_gather,
    ring_all_reduce,
    ring_broadcast,
    ring_gather,
    ring_reduce,
    ring_reduce_scatter,
    ring_scatter,
)

__all__ = [
    "SCHEMES",
    "all_reduce",
    "hierarchical_all_reduce",
    "tree_all_reduce",
    "tree_broadcast",
    "tree_reduce",
    "ring_all_gather",
    "ring_all_reduce",
    "ring_broadcast",
    "ring_gather",
    "ring_reduce",
    "ring_reduce_scatter",
    "ring_scatter",
]
