"""Benchmark: regenerate Figure 11 (predicting a new GPU: 8x H100).

Paper claims: Case 1 (A40/A100 batch-128 traces -> 8x H100 at batch 256)
averages 9.09/9.07/5.65/16.28% error for DDP/TP/PP-1/PP-2; Case 2
(H100 batch-256 trace) averages 6.69/9.09/4.20/13.76%.  Cross-GPU
prediction adds error but stays usable.
"""

from conftest import QUICK, RUNS

from repro.experiments import fig11


def test_fig11_new_gpu_prediction(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig11.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    for strategy in ("ddp", "tp", "pp-c1", "pp-c2"):
        assert result.mean_abs_error(f"/{strategy}/case1") < 0.20
        assert result.mean_abs_error(f"/{strategy}/case2") < 0.20
    # Shape: cross-GPU (case 1) is harder than same-GPU (case 2) overall.
    assert result.mean_abs_error("/case1") > result.mean_abs_error("/case2") * 0.8
