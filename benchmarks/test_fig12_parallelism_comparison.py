"""Benchmark: regenerate Figure 12 (parallelism comparison on P2).

Paper claims: with a fixed total batch of 128 on 4 GPUs, data parallelism
is always fastest; tensor parallelism does poorly except on transformers;
and TrioSim predicts the relative ordering (TP vs PP) per model.
"""

from conftest import QUICK, RUNS

from repro.experiments import fig12


def test_fig12_parallelism_comparison(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig12.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    models = {r.label.split("/")[0] for r in result.rows}
    for model in models:
        dp = result.row(f"{model}/dp")
        tp = result.row(f"{model}/tp")
        pp = result.row(f"{model}/pp")
        # DP fastest, measured and predicted.
        assert dp.measured < min(tp.measured, pp.measured)
        assert dp.predicted < min(tp.predicted, pp.predicted)
    # Ordering preservation claim, allowing near-ties to flip.
    preserved = int(result.notes.split("for ")[1].split("/")[0])
    total = int(result.notes.split("/")[1].split(" ")[0])
    assert preserved >= total - 2
