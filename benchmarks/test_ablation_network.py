"""Ablation: flow-based bandwidth sharing vs a contention-blind network.

DESIGN.md's flow model recomputes max-min fair shares whenever flows start
or finish.  This ablation shows when that matters and when it does not:

* A ring **scatter** concentrates many concurrent flows on the root's two
  links; the sharing-aware model sees the serialization a contention-blind
  per-transfer estimate misses entirely.
* A ring **AllReduce** never shares a directed link within a round (each
  device talks only to its right neighbour over full-duplex links), so the
  flow model must agree with the analytic 2(n-1)/n bound exactly — the
  machinery adds no phantom contention.
"""


from repro.collectives.ring import ring_all_reduce, ring_scatter
from repro.core.taskgraph import TaskGraphSimulator
from repro.engine.engine import Engine
from repro.network.flow import FlowNetwork
from repro.network.topology import gpu_names, ring

BW = 100e9
NBYTES = 400e6


def _sim(n):
    engine = Engine()
    return TaskGraphSimulator(engine, FlowNetwork(engine, ring(n, BW, latency=0.0)))


def test_ablation_flow_sharing_on_contended_scatter(benchmark, show):
    n = 8

    def scatter():
        sim = _sim(n)
        ring_scatter(sim, gpu_names(n), NBYTES, root=0)
        return sim.run()

    simulated = benchmark.pedantic(scatter, rounds=1, iterations=1)
    # Contention-blind estimate: every chunk moves independently at full
    # link bandwidth, so the scatter "takes" one chunk time.
    blind = NBYTES / n / BW
    show(
        f"ablation(network) ring scatter, n={n}: flow model "
        f"{simulated * 1e3:.2f} ms vs contention-blind {blind * 1e3:.2f} ms "
        f"({simulated / blind:.2f}x — the root's links serialize "
        f"{n // 2} flows each)"
    )
    # Half the chunks leave through each of the root's two links.
    assert simulated > 0.9 * (n // 2) * blind


def test_ablation_flow_model_exact_on_clean_ring(benchmark, show):
    n = 8

    def all_reduce():
        sim = _sim(n)
        ring_all_reduce(sim, gpu_names(n), NBYTES)
        return sim.run()

    simulated = benchmark.pedantic(all_reduce, rounds=1, iterations=1)
    blind = 2 * (n - 1) / n * NBYTES / BW
    show(
        f"ablation(network) clean ring AllReduce: flow model "
        f"{simulated * 1e3:.3f} ms vs analytic {blind * 1e3:.3f} ms"
    )
    assert abs(simulated - blind) / blind < 1e-6
