"""Benchmark: regenerate Figure 10 (pipeline parallelism, GPipe).

Paper claims: average errors of 6.82/6.58/15.10% for 1/2/4 chunks on
2x A100 (5.14/8.96/8.18% on 4x A100), and an anomaly — flagged with
orange triangles — where layer-heavy models get *slower* with 4 chunks
because the host cannot schedule small micro-batches fast enough.
"""

from conftest import QUICK, RUNS

from repro.experiments import fig10


def test_fig10_pipeline_parallelism(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig10.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    for gpus in (2, 4):
        c1 = result.mean_abs_error(f"/{gpus}gpu/c1")
        c4 = result.mean_abs_error(f"/{gpus}gpu/c4")
        assert c1 < 0.06
        # Shape: error grows with chunk count — exactly where the
        # unmodelled CPU scheduling overhead lives.
        assert c4 > c1
        assert c4 < 0.30
    if not QUICK:
        # The DenseNet anomalies the paper flags must reproduce.
        assert "anomalies" in result.notes
        assert "DN-169" in result.notes
