"""Plan/execute split: sweep speedup from cached extrapolation plans.

A 16-point network-only sweep (the ISSUE 5 acceptance scenario) of a
transformer workload (flan-t5-small, 8-stage pipeline parallelism), run
two ways over the same prepared trace:

* **plan caching off** — every point re-runs the extrapolator, the
  pre-plan pipeline's behaviour;
* **plan caching on** — the first point builds an
  :class:`ExtrapolationPlan`, the other 15 instantiate it (all points
  share one plan key: they differ only in link bandwidth and latency).

Both arms must produce bit-identical ``simulated_time`` for every point —
that assertion always binds, in quick mode and on any machine.  The wall
speedup (target >= 3x) is asserted only in full mode; each arm is timed
best-of-``RUNS`` to cut scheduler noise.  Results land in
``BENCH_pipeline.json`` at the repo root, including the profiler's
per-phase breakdown and the multi-iteration instancing counter
(``iterations=4`` builds the graph once).
"""

import json
import platform
import time
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

from conftest import QUICK

MODEL = "flan-t5-small"
BATCH = 8
BASE = dict(parallelism="pp", num_gpus=8, chunks=2, topology="ring")

#: 16 points varying only execute-time network parameters — one plan key.
GRID = [
    SimulationConfig(link_bandwidth=bw, link_latency=lat, **BASE)
    for bw in (25e9, 50e9, 100e9, 200e9)
    for lat in (5e-7, 1e-6, 2e-6, 5e-6)
]

#: Timed repetitions per arm (best-of); quick mode keeps CI fast.
RUNS = 2 if QUICK else 3

SPEEDUP_TARGET = 3.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _sweep(trace, plan_cache):
    start = time.perf_counter()
    results = [
        TrioSim(trace, cfg, record_timeline=False,
                plan_cache=plan_cache).run()
        for cfg in GRID
    ]
    return time.perf_counter() - start, results


def test_plan_cache_sweep(show):
    trace = Tracer(get_gpu("A100")).trace(get_model(MODEL), BATCH)
    # Warm the trace-level memos (tensor-table indexing, model fits) that
    # are orthogonal to plan caching, so neither arm pays them.
    TrioSim(trace, GRID[0], record_timeline=False).run()

    off_walls, on_walls = [], []
    off_results = on_results = None
    cache = None
    for _ in range(RUNS):
        wall, off_results = _sweep(trace, plan_cache=None)
        off_walls.append(wall)
        cache = PlanCache()
        wall, on_results = _sweep(trace, plan_cache=cache)
        on_walls.append(wall)
        # The correctness gate: caching must never change a result.
        assert ([r.total_time for r in off_results]
                == [r.total_time for r in on_results])

    off_s, on_s = min(off_walls), min(on_walls)
    speedup = off_s / on_s if on_s > 0 else float("inf")

    points = [
        {
            "link_bandwidth": cfg.link_bandwidth,
            "link_latency": cfg.link_latency,
            "simulated_time": off.total_time,
            "identical_simulated_time": off.total_time == on.total_time,
            "plan_source": on.profile.get("plan_source"),
        }
        for cfg, off, on in zip(GRID, off_results, on_results)
    ]
    assert all(p["identical_simulated_time"] for p in points)
    assert points[0]["plan_source"] == "built"
    assert all(p["plan_source"] == "memory" for p in points[1:])

    def phase_totals(results):
        totals = {}
        for r in results:
            for name, seconds in r.profile["phases"].items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    # Multi-iteration instancing: 4 iterations, one extrapolator build;
    # with steady-state folding (the default) only the warm-up
    # iterations are instanced and the tail is extended algebraically
    # (see docs/performance.md).
    iter_cfg = SimulationConfig(iterations=4, **BASE)
    iterated = TrioSim(trace, iter_cfg, record_timeline=False).run()
    counters = iterated.profile["counters"]
    assert counters["extrapolator_builds"] == 1
    assert counters["plan_instances"] == iter_cfg.fold_warmup
    assert counters["iterations_folded"] == 4 - iter_cfg.fold_warmup
    assert iterated.profile["fold_status"] == "folded"

    payload = {
        "benchmark": "plan_cache_sweep",
        "schema_version": 1,
        "quick": QUICK,
        "python": platform.python_version(),
        "model": MODEL,
        "batch_size": BATCH,
        "base_config": dict(BASE),
        "points": points,
        "runs_per_arm": RUNS,
        "wall_seconds": {"plan_cache_off": off_s, "plan_cache_on": on_s},
        "phase_seconds": {
            "plan_cache_off": phase_totals(off_results),
            "plan_cache_on": phase_totals(on_results),
        },
        "plan_cache_stats": cache.stats(),
        "multi_iteration": {
            "iterations": 4,
            "extrapolator_builds": counters["extrapolator_builds"],
            "plan_instances": counters["plan_instances"],
            "iterations_folded": counters["iterations_folded"],
            "fold_status": iterated.profile["fold_status"],
        },
        "headline": {
            "points": len(GRID),
            "wall_speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "identical_simulated_time": all(
                p["identical_simulated_time"] for p in points
            ),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    show(
        f"16-point network-only sweep, {MODEL} {BASE['parallelism']}"
        f"x{BASE['num_gpus']} (best of {RUNS})\n"
        f"  plan caching off  {off_s * 1e3:8.0f} ms\n"
        f"  plan caching on   {on_s * 1e3:8.0f} ms  ({speedup:.2f}x)\n"
        f"  bit-identical simulated_time on all {len(GRID)} points: yes\n"
        f"  iterations=4 run: {counters['extrapolator_builds']} build, "
        f"{counters['plan_instances']} instances, "
        f"{counters['iterations_folded']} folded\n"
        f"  wrote {OUTPUT.name}"
    )
    if not QUICK:
        # Quick/CI runs gate on bit-identity only; the wall target binds
        # on the full benchmark run.
        assert speedup >= SPEEDUP_TARGET
