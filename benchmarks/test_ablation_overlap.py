"""Ablation: DDP communication/computation overlap and bucket sizing.

DESIGN.md's DDP extrapolator AllReduces gradient buckets concurrently with
the remaining backward pass.  This ablation measures how much the overlap
buys (vs a single post-backward AllReduce) and how bucket size moves the
result — the paper's §4.3 "either parallel with the backward pass to save
execution time or after the backward pass".
"""

from conftest import RUNS, show  # noqa: F401 - fixture re-export

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu, platform_p1
from repro.trace.tracer import Tracer
from repro.workloads import get_model

MODEL = "vgg16"  # 553 MB of gradients: overlap matters


def _predict(trace, **kw):
    config = SimulationConfig.for_platform(platform_p1(), parallelism="ddp", **kw)
    return TrioSim(trace, config, record_timeline=False).run().total_time


def test_ablation_overlap_on_off(benchmark, show):
    trace = Tracer(get_gpu("A40")).trace(get_model(MODEL), 128)
    overlapped = benchmark.pedantic(
        lambda: _predict(trace, overlap=True), rounds=1, iterations=1
    )
    serial = _predict(trace, overlap=False)
    show(
        f"ablation(overlap) {MODEL} DDP on P1: overlapped "
        f"{overlapped * 1e3:.1f} ms vs post-backward {serial * 1e3:.1f} ms "
        f"({(serial / overlapped - 1) * 100:.1f}% saved)"
    )
    assert overlapped < serial


def test_ablation_bucket_size_sweep(benchmark, show):
    trace = Tracer(get_gpu("A40")).trace(get_model(MODEL), 128)
    times = benchmark.pedantic(
        lambda: {
            mib: _predict(trace, bucket_bytes=mib * 1024 * 1024)
            for mib in (1, 25, 1024)
        },
        rounds=1, iterations=1,
    )
    show(
        "ablation(overlap) bucket sweep: "
        + ", ".join(f"{mib} MiB -> {t * 1e3:.1f} ms" for mib, t in times.items())
    )
    # One giant bucket forfeits overlap; it must not beat the default.
    assert times[25] <= times[1024] * 1.001
