"""Benchmark: regenerate Table 1 (tool comparison).

The qualitative feature matrix is static; the quantitative row — the
claimed prediction error — is re-derived from quick runs of the DDP, TP,
and PP validations so the reproduced table reports measured numbers.
"""

from conftest import RUNS

from repro.experiments import table1


def test_table1_tool_comparison(benchmark, show):
    result = benchmark.pedantic(
        lambda: table1.run(quick=True, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    # TrioSim's feature column matches the paper.
    assert result.features["Trace Requirement"]["TrioSim"] == "Single-GPU"
    assert result.features["Parallelism"]["TrioSim"] == "DP, TP, PP"
    # Measured error row in the same band as the paper's claims.
    assert result.measured_error["DP"] < 0.06   # paper 2.91%
    assert result.measured_error["TP"] < 0.10   # paper 4.54%
    assert result.measured_error["PP"] < 0.10   # paper 6.82%
