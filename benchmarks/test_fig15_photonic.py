"""Benchmark: regenerate Figure 15 (wafer-scale photonic case study).

Paper claims: on an 84-GPU electrical wafer mesh, communication dominates
data-parallel training (92.21% of VGG-19's time); a Passage-style photonic
network cuts communication time by roughly half; and communication remains
a major cost even with photonics.
"""

from conftest import QUICK

from repro.experiments import fig15


def test_fig15_wafer_scale_photonic(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig15.run(quick=QUICK), rounds=1, iterations=1
    )
    show(result.table())
    vgg = result.row("VGG-19/electrical")
    # Communication dominates the electrical wafer (paper: 92.21%).
    assert vgg.detail["comm_ratio"] > 0.7
    for row in result.rows:
        model = row.label.split("/")[0]
        if row.label.endswith("/electrical"):
            photonic = result.row(f"{model}/photonic")
            # The photonic network substantially reduces communication...
            assert photonic.detail["comm"] < 0.75 * row.detail["comm"]
            # ...but does not eliminate it (scalability not fully solved).
            assert photonic.detail["comm"] > photonic.detail["compute"]
