"""Benchmark: regenerate Figure 14 (simulator execution time).

Paper claim: every DDP-on-P2 simulation completes within seconds, and
wall time tracks the trace size.  This is the one benchmark where the
*benchmarked quantity itself* is the figure.

The large-scale case extends the figure beyond the paper: a >= 64-GPU
collective-heavy load that stresses the network hot path, comparing the
incremental max-min allocator against the legacy dense one (see
``network_load.py`` and ``bench_to_json.py`` for the recorded baseline).
"""

from conftest import QUICK

from network_load import compare_modes

from repro.experiments import fig14


def test_fig14_simulator_execution_time(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig14.run(quick=QUICK), rounds=1, iterations=1
    )
    show(result.table())
    assert all(r.predicted < 30.0 for r in result.rows)
    # Wall time correlates with trace size: the biggest trace should not
    # be simulated faster than the smallest one by a wide margin.
    by_ops = sorted(result.rows, key=lambda r: r.detail["operators"])
    assert by_ops[-1].predicted > by_ops[0].predicted * 0.5


def test_fig14_large_scale_collectives(benchmark, show):
    """>= 64 GPUs of staggered gradient-bucket all-reduces: the incremental
    allocator must cut engine event cancellations >= 3x without changing
    the simulated time."""
    gpus = 64 if QUICK else 128
    buckets = 2 if QUICK else 4
    nbytes = 8e6 if QUICK else 32e6
    result = benchmark.pedantic(
        lambda: compare_modes("hierarchical_buckets", num_gpus=gpus,
                              buckets=buckets, nbytes=nbytes),
        rounds=1, iterations=1,
    )
    inc, leg = result["incremental"], result["legacy"]
    show(
        f"{gpus} GPUs, {buckets} buckets/node\n"
        f"  legacy      {leg['wall_time_s'] * 1e3:8.0f} ms wall, "
        f"{leg['cancellations']:7d} cancellations, "
        f"{leg['events_per_sec']:,.0f} events/s\n"
        f"  incremental {inc['wall_time_s'] * 1e3:8.0f} ms wall, "
        f"{inc['cancellations']:7d} cancellations, "
        f"{inc['events_per_sec']:,.0f} events/s\n"
        f"  {result['cancellation_reduction']:,.1f}x fewer cancellations, "
        f"{result['wall_speedup']:.2f}x wall speedup, identical simulated "
        f"time: {result['identical_simulated_time']}"
    )
    assert result["identical_simulated_time"]
    assert leg["cancellations"] >= 3 * max(inc["cancellations"], 1)
    assert inc["events"] == leg["events"]
