"""Benchmark: regenerate Figure 14 (simulator execution time).

Paper claim: every DDP-on-P2 simulation completes within seconds, and
wall time tracks the trace size.  This is the one benchmark where the
*benchmarked quantity itself* is the figure.
"""

from conftest import QUICK

from repro.experiments import fig14


def test_fig14_simulator_execution_time(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig14.run(quick=QUICK), rounds=1, iterations=1
    )
    show(result.table())
    assert all(r.predicted < 30.0 for r in result.rows)
    # Wall time correlates with trace size: the biggest trace should not
    # be simulated faster than the smallest one by a wide margin.
    by_ops = sorted(result.rows, key=lambda r: r.detail["operators"])
    assert by_ops[-1].predicted > by_ops[0].predicted * 0.5
