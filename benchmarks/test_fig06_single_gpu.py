"""Benchmark: regenerate Figure 6 (single-GPU batch-size extrapolation).

Paper claim: predicting batch-256 iterations from batch-128 traces yields
average errors of 1.10% (A40) and 3.25% (A100).
"""

from conftest import QUICK, RUNS

from repro.experiments import fig06


def test_fig06_single_gpu_batch_extrapolation(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig06.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    assert result.mean_abs_error("/A40") < 0.06
    assert result.mean_abs_error("/A100") < 0.08
