"""Robustness benchmark: error bands under noise/seed perturbation.

Not a paper figure — reproduction hygiene.  The DDP validation error must
stay inside the paper-comparable band for every oracle noise level
(including zero noise, where only systematic model differences remain)
and for different random seeds.
"""

from conftest import QUICK, RUNS

from repro.experiments import sensitivity


def test_sensitivity_noise_and_seed(benchmark, show):
    result = benchmark.pedantic(
        lambda: sensitivity.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    for row in result.rows:
        assert row.predicted < 0.06, row.label       # mean |err| in band
        assert row.detail["max_err"] < 0.10, row.label
    # Zero noise isolates the systematic gap — it must be non-degenerate
    # (the oracle really is a different model, not the simulator itself).
    zero = result.row("sigma=0")
    assert zero.predicted > 0.001
