"""Fabric-scale benchmark: routing strategies on a 128-GPU leaf-spine Clos.

The datacenter-fabric layer must not cost the simulator its headline
lightness: candidate-path enumeration, per-flow routing choices, and the
per-link congestion counters all sit on the network hot path.  This
benchmark runs DDP training on a 128-GPU oversubscribed leaf-spine
fabric under the legacy shortest-path policy and every non-trivial
routing strategy, and writes the events/s + wall-time baseline to
``BENCH_fabric.json`` at the repo root — the number future fabric PRs
compare against.

``REPRO_BENCH_QUICK=1`` shrinks the fabric to 64 GPUs for CI smoke runs
(the committed baseline is the full 128-GPU figure).
"""

import json
import platform
from pathlib import Path

from conftest import QUICK

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu
from repro.network.topology import TopologySpec
from repro.trace.tracer import Tracer
from repro.workloads import get_model

NUM_GPUS = 64 if QUICK else 128
GPUS_PER_LEAF = 8
SPINES = 4 if QUICK else 8
OVERSUBSCRIPTION = 2.0
STRATEGIES = ("shortest", "ecmp", "flowlet", "adaptive")

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"


def _config(routing: str) -> SimulationConfig:
    return SimulationConfig(
        parallelism="ddp", num_gpus=NUM_GPUS,
        topology=TopologySpec("leaf_spine", {
            "gpus_per_leaf": GPUS_PER_LEAF, "spines": SPINES,
        }),
        oversubscription=OVERSUBSCRIPTION,
        link_bandwidth=100e9, routing=routing, routing_seed=1,
    )


def test_fabric_routing_scale(benchmark, show):
    trace = Tracer(get_gpu("A100")).trace(get_model("resnet50"), 64)

    def run_all():
        results = {}
        for routing in STRATEGIES:
            res = TrioSim(trace, _config(routing),
                          record_timeline=False).run()
            results[routing] = res
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    cases = {}
    for routing, res in results.items():
        cases[routing] = {
            "total_time": res.total_time,
            "wall_time": res.wall_time,
            "events": res.events,
            "events_per_sec": res.events / max(res.wall_time, 1e-9),
            "multipath_pairs": res.network["multipath_pairs"],
            "max_peak_flows": res.network["max_peak_flows"],
            "most_loaded_link": res.network["most_loaded_link"],
        }
    headline = cases["adaptive"]
    payload = {
        "benchmark": "fabric_routing_scale",
        "schema_version": 1,
        "quick": QUICK,
        "python": platform.python_version(),
        "num_gpus": NUM_GPUS,
        "gpus_per_leaf": GPUS_PER_LEAF,
        "spines": SPINES,
        "oversubscription": OVERSUBSCRIPTION,
        "cases": cases,
        "headline": {
            "routing": "adaptive",
            "num_gpus": NUM_GPUS,
            "events_per_sec": headline["events_per_sec"],
            "wall_time": headline["wall_time"],
            "overhead_vs_shortest": (
                headline["wall_time"]
                / max(cases["shortest"]["wall_time"], 1e-9)),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    show("\n".join(
        f"fabric {routing:>8}: predicted {case['total_time'] * 1e3:.1f} ms, "
        f"{case['wall_time']:.1f} s wall, {case['events_per_sec']:,.0f} "
        f"events/s, peak {case['max_peak_flows']} flows on "
        f"{case['most_loaded_link']}"
        for routing, case in cases.items()
    ) + f"\nwrote {OUTPUT}")

    # The fabric layer must stay lightweight: every strategy finishes the
    # 128-GPU run in interactive time, and cross-leaf pairs really did see
    # multiple candidate paths.
    for routing, case in cases.items():
        assert case["wall_time"] < 60.0, routing
    assert all(case["multipath_pairs"] > 0
               for name, case in cases.items() if name != "shortest")
    # Path diversity spreads congestion: adaptive's hottest link carries
    # no more concurrent flows than the hash-pinned ECMP one.
    assert cases["adaptive"]["max_peak_flows"] <= \
        cases["ecmp"]["max_peak_flows"]
