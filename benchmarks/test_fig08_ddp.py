"""Benchmark: regenerate Figure 8 (distributed data parallelism).

Paper claim: 2.91% (P1) and 2.73% (P2) average error — the best-predicted
strategy, and better than standard DP (Figure 7).
"""

from conftest import QUICK, RUNS

from repro.experiments import fig07, fig08


def test_fig08_distributed_data_parallelism(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig08.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    assert result.mean_abs_error("/P1") < 0.06
    assert result.mean_abs_error("/P2") < 0.06


def test_fig08_ddp_predicted_better_than_standard_dp(benchmark, show):
    """The paper's cross-figure claim: DDP predictions beat standard DP."""
    ddp, dp = benchmark.pedantic(
        lambda: (fig08.run(quick=True, runs=RUNS), fig07.run(quick=True, runs=RUNS)),
        rounds=1, iterations=1,
    )
    assert ddp.mean_abs_error("/P1") < dp.mean_abs_error()
