"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper and prints the
rows it reports.  Set ``REPRO_BENCH_QUICK=1`` to run representative
subsets instead of the full workload sets (useful for CI); the default
regenerates the complete figures.
"""

import os

import pytest

#: Quick mode trims every figure to a small representative workload set.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

#: Oracle measurement repetitions (the paper averages 10 batches).
RUNS = 3 if QUICK else 10


@pytest.fixture
def show():
    """Print a figure table beneath the benchmark output."""

    def _show(text):
        print()
        print(text)

    return _show
