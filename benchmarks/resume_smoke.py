"""Kill-and-resume smoke: SIGKILL a journaled sweep mid-wave, resume it,
and assert the merged results match an uninterrupted baseline key for key.

The CI `resume-smoke` job runs this on every push:

    python benchmarks/resume_smoke.py -o resume_smoke.json \
        --journal-dir resume_smoke_journal

1. trace resnet18 and run a 16-point sweep uninterrupted (the baseline);
2. launch the same sweep journaled in a subprocess, with every point
   slowed so the wave takes a few seconds, and SIGKILL the whole process
   group once half the points are durably journaled;
3. resume from the journal and compare: every per-point cache key and
   every simulated ``total_time`` must match the baseline bit for bit,
   with the journaled half replayed (not re-simulated).

Exits non-zero on any mismatch.  The journal directory is left behind
for artifact upload — it shows exactly which records survived the kill.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.gpus.specs import get_gpu
from repro.service.cache import ResultCache, trace_digest
from repro.service.journal import JOURNAL_NAME, SweepJournal
from repro.service.runner import SweepRunner
from repro.trace.trace import Trace
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

POINTS = 16
KILL_AFTER_DONE = POINTS // 2

CHILD_SCRIPT = """\
import sys, time
trace_path, journal_dir, slowdown = sys.argv[1], sys.argv[2], float(sys.argv[3])

import repro.service.worker as w
_original = w.simulate_point

def slow_simulate(*args, **kwargs):
    time.sleep(slowdown)
    return _original(*args, **kwargs)

w.simulate_point = slow_simulate

from repro.core.config import SimulationConfig
from repro.service.runner import SweepRunner
from repro.trace.trace import Trace

trace = Trace.load(trace_path)
configs = [
    SimulationConfig(parallelism="ddp", num_gpus=n, link_bandwidth=bw)
    for n in (2, 4, 8, 16)
    for bw in (25e9, 50e9, 100e9, 200e9)
]
SweepRunner(max_workers=2, journal=journal_dir).run(trace, configs)
"""


def sweep_configs():
    return [
        SimulationConfig(parallelism="ddp", num_gpus=n, link_bandwidth=bw)
        for n in (2, 4, 8, 16)
        for bw in (25e9, 50e9, 100e9, 200e9)
    ]


def kill_mid_sweep(trace_path, journal_dir, slowdown=0.2, timeout=300.0):
    """Run the journaled sweep in a subprocess; SIGKILL its process group
    once KILL_AFTER_DONE points are journaled.  Returns the done count
    observed at kill time."""
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(trace_path), str(journal_dir), str(slowdown)],
        start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    journal_path = Path(journal_dir) / JOURNAL_NAME
    deadline = time.monotonic() + timeout
    try:
        while True:
            if time.monotonic() > deadline:
                raise SystemExit("FAIL: sweep subprocess never reached "
                                 f"{KILL_AFTER_DONE} journaled points")
            if proc.poll() is not None:
                _out, err = proc.communicate()
                raise SystemExit("FAIL: sweep subprocess exited early "
                                 f"({proc.returncode}):\n{err}")
            done = 0
            if journal_path.exists():
                done = journal_path.read_text().count('"t": "done"')
            if done >= KILL_AFTER_DONE:
                return done
            time.sleep(0.01)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()
        if proc.stdout:
            proc.stdout.close()
        if proc.stderr:
            proc.stderr.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="resume_smoke.json")
    parser.add_argument("--journal-dir", default="resume_smoke_journal")
    parser.add_argument("--slowdown", type=float, default=0.2,
                        help="per-point sleep (s) in the doomed sweep, so "
                             "the kill lands mid-wave")
    args = parser.parse_args(argv)

    scratch = Path(args.journal_dir)
    scratch.mkdir(parents=True, exist_ok=True)
    trace_path = scratch / "trace.json"

    print(f"[1/3] baseline: uninterrupted {POINTS}-point sweep")
    trace = Tracer(get_gpu("A40")).trace(get_model("resnet18"), 16)
    trace.save(trace_path)
    trace = Trace.load(trace_path)   # the exact bytes the child will load
    configs = sweep_configs()
    baseline = SweepRunner(max_workers=2).run(trace, configs)
    assert all(o.ok for o in baseline), "baseline sweep failed"
    digest = trace_digest(trace)
    expected = {
        i: {"key": ResultCache.point_key(digest, cfg, False),
            "total_time": baseline[i].unwrap().total_time}
        for i, cfg in enumerate(configs)
    }

    print(f"[2/3] kill: journaled sweep, SIGKILL at >={KILL_AFTER_DONE} "
          f"of {POINTS} points done")
    journal_dir = scratch / "journal"
    done_at_kill = kill_mid_sweep(trace_path, journal_dir, args.slowdown)
    state = SweepJournal(journal_dir).read()
    survived = set(state.completed)
    print(f"      killed with {done_at_kill} done records written; "
          f"{len(survived)} survived readback "
          f"({state.torn_lines} torn line(s) dropped)")
    if not survived:
        raise SystemExit("FAIL: no journaled points survived the kill")
    if len(survived) >= POINTS:
        raise SystemExit("FAIL: the sweep finished before the kill; "
                         "increase --slowdown")

    print(f"[3/3] resume: replay {len(survived)} points, re-run the rest")
    runner = SweepRunner(max_workers=2, journal=journal_dir, resume=True)
    outcomes = runner.run(trace, configs)

    failures = []
    for i, outcome in enumerate(outcomes):
        if not outcome.ok:
            failures.append(f"point {i} failed: {outcome.error.kind}")
            continue
        if outcome.unwrap().total_time != expected[i]["total_time"]:
            failures.append(f"point {i} total_time mismatch")
    resumed = {o.index for o in outcomes if o.resumed}
    if resumed != survived:
        failures.append(f"replayed set {sorted(resumed)} != journaled set "
                        f"{sorted(survived)}")
    for i in survived:
        if state.completed[i]["key"] != expected[i]["key"]:
            failures.append(f"point {i} journal key mismatch")

    report = {
        "points": POINTS,
        "done_at_kill": done_at_kill,
        "survived_readback": len(survived),
        "torn_lines": state.torn_lines,
        "resumed": len(resumed),
        "re_ran": POINTS - len(resumed),
        "bit_identical": not failures,
        "failures": failures,
    }
    Path(args.output).write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    if failures:
        raise SystemExit("FAIL: resumed sweep diverged from baseline")
    print("OK: kill -> resume merged bit-identically, key for key")


if __name__ == "__main__":
    main()
