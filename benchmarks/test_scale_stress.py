"""Scale stress: the title's "large-scale" claim, pushed past the paper.

The paper demonstrates 84 simulated GPUs (Figure 15).  This benchmark
simulates DDP training of GPT-2 on 128 GPUs — ~5,000 ring-AllReduce
rounds of 128 concurrent flows plus ~44k compute tasks, roughly a million
events — and requires the whole thing to finish within a minute of wall
time, where the cycle-level simulators the paper positions against would
take "centuries" for the workload itself.  (256 GPUs completes in ~100 s;
see docs/architecture.md on the coalesced-reallocation optimization that
makes this tractable.)
"""


from conftest import QUICK

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu
from repro.trace.tracer import Tracer
from repro.workloads import get_model

NUM_GPUS = 64 if QUICK else 128


def test_scale_stress_large_ddp(benchmark, show):
    trace = Tracer(get_gpu("A100")).trace(get_model("gpt2"), 32)
    config = SimulationConfig(
        parallelism="ddp", num_gpus=NUM_GPUS,
        topology="ring", link_bandwidth=234e9,
    )

    def simulate():
        return TrioSim(trace, config, record_timeline=False).run()

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    show(
        f"scale stress: {NUM_GPUS}-GPU DDP GPT-2 — predicted iteration "
        f"{result.total_time * 1e3:.1f} ms, simulated in "
        f"{result.wall_time:.1f} s wall ({result.events} events, "
        f"{result.events / max(result.wall_time, 1e-9):,.0f} events/s)"
    )
    assert result.wall_time < 60.0
    assert len(result.per_gpu_busy) == NUM_GPUS
    # Ring AllReduce latency grows with n: the iteration must cost more
    # than the single-GPU busy time.
    assert result.total_time > trace.total_duration
