"""Fail CI when a benchmark's headline regresses against its baseline.

Compares freshly generated benchmark JSONs against the committed
``BENCH_*.json`` baselines and exits non-zero when a headline metric
regressed by more than ``--tolerance`` (default 20%).  Numeric checks
are one-sided: improvements always pass, and only degradations beyond
the tolerance fail.

Numeric metrics compared (whichever appear in both headlines):

* ``wall_speedup`` — ratio metrics transfer across machines and scales,
  so this is compared even when one file is a ``--quick`` smoke run.
* ``overhead_vs_shortest`` — lower-is-better ratio (fabric routing
  overhead), also scale-free.
* ``events_per_sec`` — absolute throughput is machine- and
  scale-dependent, so it is only compared when both files were produced
  at the same scale (matching ``quick`` flags).

Boolean contract metrics (``identical_simulated_time``,
``within_fold_tolerance``): when the baseline headline records ``true``,
a fresh ``false`` fails regardless of tolerance — these encode
correctness contracts, not performance.

Multiple benchmarks gate in one invocation with repeatable
``--pair FRESH=BASELINE`` arguments, and ``--require-all DIR`` fails the
run when any committed ``BENCH_*.json`` under ``DIR`` is *not* covered
by a pair — so adding a benchmark without wiring it into the CI gate is
itself a CI failure.

``--floor [BENCHMARK:]METRIC=VALUE`` adds an absolute lower bound on a
fresh headline metric regardless of the baseline — e.g. the
iteration-folding acceptance bar ``--floor wall_speedup=3``.
``--ceiling [BENCHMARK:]METRIC=VALUE`` is the upper-bound mirror — e.g.
``--ceiling iteration_folding:max_relative_error=1e-9`` asserts folding
drift stays inside ``fold_tolerance``.  The optional ``BENCHMARK:``
prefix scopes a bound to one benchmark when gating several.

Usage::

    python benchmarks/check_perf_regression.py FRESH BASELINE \
        [--tolerance 0.2] [--floor wall_speedup=5]
    python benchmarks/check_perf_regression.py \
        --pair fresh/engine.json=BENCH_engine.json \
        --pair fresh/fold.json=BENCH_fold.json \
        --require-all . \
        --floor iteration_folding:wall_speedup=3 \
        --ceiling iteration_folding:max_relative_error=1e-9
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Headline metrics where higher is better, in report order.
METRICS = ("wall_speedup", "events_per_sec")

#: Headline metrics where lower is better (ratios; scale-free).
LOWER_BETTER = ("overhead_vs_shortest",)

#: Metrics meaningful across different benchmark scales (ratios).
SCALE_FREE = {"wall_speedup", "overhead_vs_shortest"}

#: Boolean headline contracts: baseline ``true`` must stay ``true``.
BOOLEANS = ("identical_simulated_time", "within_fold_tolerance")


def _load(path: str) -> dict:
    doc = json.loads(Path(path).read_text())
    if "headline" not in doc:
        raise SystemExit(f"{path}: no 'headline' section")
    return doc


def _parse_bound(spec: str):
    """``[BENCHMARK:]METRIC=VALUE`` -> (benchmark-or-None, metric, value)."""
    head, _, value = spec.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(
            f"bound must look like [BENCHMARK:]METRIC=VALUE, got {spec!r}")
    benchmark, _, metric = head.rpartition(":")
    return benchmark or None, metric, float(value)


def _parse_pair(spec: str):
    fresh, _, baseline = spec.partition("=")
    if not baseline:
        raise argparse.ArgumentTypeError(
            f"pair must look like FRESH=BASELINE, got {spec!r}")
    return fresh, baseline


def check(fresh: dict, baseline: dict, tolerance: float,
          floors, ceilings) -> list:
    """Human-readable failures; empty means the run is within bounds."""
    failures = []
    name = fresh.get("benchmark", "?")
    same_scale = fresh.get("quick") == baseline.get("quick")
    for metric in METRICS + LOWER_BETTER:
        if metric not in fresh["headline"] or \
                metric not in baseline["headline"]:
            continue
        got = fresh["headline"][metric]
        want = baseline["headline"][metric]
        if metric not in SCALE_FREE and not same_scale:
            print(f"  skip {metric}: scale mismatch "
                  f"(fresh quick={fresh.get('quick')}, "
                  f"baseline quick={baseline.get('quick')})")
            continue
        if metric in LOWER_BETTER:
            bound = want * (1.0 + tolerance)
            ok = got <= bound
        else:
            bound = want * (1.0 - tolerance)
            ok = got >= bound
        status = "ok" if ok else "REGRESSION"
        print(f"  {metric}: fresh {got:,.2f} vs baseline {want:,.2f} "
              f"(bound {bound:,.2f}) {status}")
        if not ok:
            failures.append(
                f"{name}: {metric} regressed: {got:,.2f} vs bound "
                f"{bound:,.2f} ({tolerance:.0%} beyond baseline "
                f"{want:,.2f})")
    for metric in BOOLEANS:
        if baseline["headline"].get(metric) is not True:
            continue
        got = fresh["headline"].get(metric)
        status = "ok" if got is True else "BROKEN"
        print(f"  {metric}: baseline true, fresh {got} {status}")
        if got is not True:
            failures.append(
                f"{name}: {metric} was true in the baseline but is "
                f"{got!r} in the fresh run")
    for scope, metric, floor in floors:
        if scope is not None and scope != name:
            continue
        got = fresh["headline"].get(metric)
        if got is None:
            failures.append(f"{name}: floor metric {metric!r} not in "
                            f"headline")
            continue
        status = "ok" if got >= floor else "BELOW FLOOR"
        print(f"  {metric}: fresh {got:,.2f} vs floor {floor:,.2f} "
              f"{status}")
        if got < floor:
            failures.append(
                f"{name}: {metric} below floor: {got:,.2f} < {floor}")
    for scope, metric, ceiling in ceilings:
        if scope is not None and scope != name:
            continue
        got = fresh["headline"].get(metric)
        if got is None:
            failures.append(f"{name}: ceiling metric {metric!r} not in "
                            f"headline")
            continue
        status = "ok" if got <= ceiling else "ABOVE CEILING"
        print(f"  {metric}: fresh {got:.3g} vs ceiling {ceiling:.3g} "
              f"{status}")
        if got > ceiling:
            failures.append(
                f"{name}: {metric} above ceiling: {got:.3g} > {ceiling}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="?", default=None,
                        help="freshly generated benchmark JSON")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--pair", type=_parse_pair, action="append",
                        default=[], metavar="FRESH=BASELINE",
                        help="gate FRESH against BASELINE (repeatable; "
                             "alternative to the positional pair)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--floor", type=_parse_bound, action="append",
                        default=[], metavar="[BENCHMARK:]METRIC=VALUE",
                        help="absolute lower bound on a fresh headline "
                             "metric (repeatable; BENCHMARK: scopes it)")
    parser.add_argument("--ceiling", type=_parse_bound, action="append",
                        default=[], metavar="[BENCHMARK:]METRIC=VALUE",
                        help="absolute upper bound on a fresh headline "
                             "metric (repeatable; BENCHMARK: scopes it)")
    parser.add_argument("--require-all", default=None, metavar="DIR",
                        help="fail unless every BENCH_*.json under DIR "
                             "is covered by a gated pair")
    args = parser.parse_args(argv)

    pairs = list(args.pair)
    if args.fresh is not None:
        if args.baseline is None:
            parser.error("positional FRESH needs a BASELINE")
        pairs.append((args.fresh, args.baseline))
    if not pairs:
        parser.error("nothing to gate: give FRESH BASELINE or --pair")

    failures = []
    gated_names = set()
    for fresh_path, baseline_path in pairs:
        fresh = _load(fresh_path)
        baseline = _load(baseline_path)
        if fresh.get("benchmark") != baseline.get("benchmark"):
            raise SystemExit(
                f"benchmark mismatch: {fresh.get('benchmark')!r} vs "
                f"{baseline.get('benchmark')!r}")
        gated_names.add(baseline.get("benchmark"))
        print(f"{fresh['benchmark']}: fresh {fresh_path} vs "
              f"baseline {baseline_path} "
              f"(tolerance {args.tolerance:.0%})")
        failures += check(fresh, baseline, args.tolerance,
                          args.floor, args.ceiling)

    if args.require_all is not None:
        committed = sorted(Path(args.require_all).glob("BENCH_*.json"))
        if not committed:
            failures.append(
                f"--require-all {args.require_all}: no BENCH_*.json found")
        for path in committed:
            name = json.loads(path.read_text()).get("benchmark")
            covered = name in gated_names
            print(f"coverage: {path.name} ({name}) "
                  f"{'gated' if covered else 'NOT GATED'}")
            if not covered:
                failures.append(
                    f"{path.name} (benchmark {name!r}) is committed but "
                    f"not covered by any --pair gate")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
