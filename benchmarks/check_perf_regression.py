"""Fail CI when a benchmark's headline regresses against its baseline.

Compares a freshly generated benchmark JSON against the committed
``BENCH_*.json`` baseline and exits non-zero when a headline metric
regressed by more than ``--tolerance`` (default 20%).  The check is
one-sided: improvements always pass, and only degradations beyond the
tolerance fail.

Metrics compared (whichever appear in both headlines):

* ``wall_speedup`` — ratio metrics transfer across machines and scales,
  so this is compared even when one file is a ``--quick`` smoke run.
* ``events_per_sec`` — absolute throughput is machine- and
  scale-dependent, so it is only compared when both files were produced
  at the same scale (matching ``quick`` flags).

``--floor METRIC=VALUE`` adds an absolute lower bound on a fresh
headline metric regardless of the baseline — e.g. the iteration-folding
acceptance bar ``--floor wall_speedup=5``.

Usage::

    python benchmarks/check_perf_regression.py FRESH BASELINE \
        [--tolerance 0.2] [--floor wall_speedup=5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Headline metrics where higher is better, in report order.
METRICS = ("wall_speedup", "events_per_sec")

#: Metrics meaningful across different benchmark scales (ratios).
SCALE_FREE = {"wall_speedup"}


def _load(path: str) -> dict:
    doc = json.loads(Path(path).read_text())
    if "headline" not in doc:
        raise SystemExit(f"{path}: no 'headline' section")
    return doc


def _parse_floor(spec: str):
    metric, _, value = spec.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(
            f"floor must look like METRIC=VALUE, got {spec!r}")
    return metric, float(value)


def check(fresh: dict, baseline: dict, tolerance: float,
          floors) -> list:
    """Human-readable failures; empty means the run is within bounds."""
    failures = []
    same_scale = fresh.get("quick") == baseline.get("quick")
    for metric in METRICS:
        if metric not in fresh["headline"] or \
                metric not in baseline["headline"]:
            continue
        got = fresh["headline"][metric]
        want = baseline["headline"][metric]
        if metric not in SCALE_FREE and not same_scale:
            print(f"  skip {metric}: scale mismatch "
                  f"(fresh quick={fresh.get('quick')}, "
                  f"baseline quick={baseline.get('quick')})")
            continue
        bound = want * (1.0 - tolerance)
        status = "ok" if got >= bound else "REGRESSION"
        print(f"  {metric}: fresh {got:,.2f} vs baseline {want:,.2f} "
              f"(bound {bound:,.2f}) {status}")
        if got < bound:
            failures.append(
                f"{metric} regressed: {got:,.2f} < {bound:,.2f} "
                f"({tolerance:.0%} below baseline {want:,.2f})")
    for metric, floor in floors:
        got = fresh["headline"].get(metric)
        if got is None:
            failures.append(f"floor metric {metric!r} not in headline")
            continue
        status = "ok" if got >= floor else "BELOW FLOOR"
        print(f"  {metric}: fresh {got:,.2f} vs floor {floor:,.2f} "
              f"{status}")
        if got < floor:
            failures.append(f"{metric} below floor: {got:,.2f} < {floor}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--floor", type=_parse_floor, action="append",
                        default=[], metavar="METRIC=VALUE",
                        help="absolute lower bound on a fresh headline "
                             "metric (repeatable)")
    args = parser.parse_args(argv)

    fresh = _load(args.fresh)
    baseline = _load(args.baseline)
    if fresh.get("benchmark") != baseline.get("benchmark"):
        raise SystemExit(
            f"benchmark mismatch: {fresh.get('benchmark')!r} vs "
            f"{baseline.get('benchmark')!r}")

    print(f"{fresh['benchmark']}: fresh {args.fresh} vs "
          f"baseline {args.baseline} (tolerance {args.tolerance:.0%})")
    failures = check(fresh, baseline, args.tolerance, args.floor)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
