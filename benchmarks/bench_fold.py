"""Write the iteration-folding benchmark results to ``BENCH_fold.json``.

Runs multi-iteration DDP training scenarios twice over a shared plan
cache — once with steady-state iteration folding (the default) and once
with ``fold=False`` (the exact event-by-event path) — and records the
wall speedup, the simulated-time drift between the two, and the exact
path's events/sec.  This is the perf baseline future PRs compare
against (``benchmarks/check_perf_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_fold.py [-o BENCH_fold.json]
    PYTHONPATH=src python benchmarks/bench_fold.py --quick   # CI smoke

The headline case uses ``fold_warmup=1`` (the documented max-speed
configuration: the first iteration's period is trusted without a
steadiness check) and no timeline recording, so the folded run simulates
1 of 8 iterations.  The second case keeps the default ``fold_warmup=2``.
Folded and exact simulated times agree to ~1e-13 relative (repeated
float addition of the steady-state period vs. per-event accumulation);
``max_relative_error`` records the drift and ``identical_simulated_time``
is honest about it not being bit-exact (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Dict, Tuple

from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

#: The headline case is the 8-iteration 64-GPU run with the max-speed
#: knobs; the second case shows the default warm-up.  Quick mode shrinks
#: the model and GPU count so CI stays under ~30s.
FULL_CASES = [
    dict(model="resnet50", batch=128, num_gpus=64, iterations=8,
         fold_warmup=1, record_timeline=False),
    dict(model="resnet50", batch=128, num_gpus=64, iterations=8,
         fold_warmup=2, record_timeline=False),
]
QUICK_CASES = [
    dict(model="resnet18", batch=32, num_gpus=16, iterations=8,
         fold_warmup=1, record_timeline=False),
]

_TRACES: Dict[Tuple[str, int], object] = {}


def _trace(model: str, batch: int):
    key = (model, batch)
    if key not in _TRACES:
        _TRACES[key] = Tracer(get_gpu("A100")).trace(get_model(model), batch)
    return _TRACES[key]


def _timed_run(trace, config, cache, record_timeline):
    start = time.perf_counter()
    result = TrioSim(trace, config, record_timeline=record_timeline,
                     plan_cache=cache).run()
    return time.perf_counter() - start, result


def compare_fold(model: str, batch: int, num_gpus: int, iterations: int,
                 fold_warmup: int, record_timeline: bool) -> dict:
    """One folded-vs-exact comparison over a shared, pre-warmed plan."""
    trace = _trace(model, batch)
    cache = PlanCache()
    folded_cfg = SimulationConfig(
        parallelism="ddp", num_gpus=num_gpus, topology="ring",
        link_bandwidth=234e9, iterations=iterations,
        fold_warmup=fold_warmup)
    exact_cfg = dataclasses.replace(folded_cfg, fold=False)

    # Warm the plan cache and process-level memos with an untimed folded
    # run; the plan key ignores the fold knobs, so both arms then
    # instantiate the same cached plan.
    TrioSim(trace, folded_cfg, record_timeline=False,
            plan_cache=cache).run()

    exact_wall, exact = _timed_run(trace, exact_cfg, cache, record_timeline)
    folded_wall, folded = _timed_run(trace, folded_cfg, cache,
                                     record_timeline)

    rel_errors = [abs(folded.total_time - exact.total_time)
                  / exact.total_time]
    rel_errors += [
        abs(f - e) / e for f, e in
        zip(folded.iteration_times, exact.iteration_times)
    ]
    counters = folded.profile.get("counters", {})
    max_relative_error = max(rel_errors)
    return {
        "scenario": f"{model}_ddp",
        "params": dict(model=model, batch=batch, num_gpus=num_gpus,
                       iterations=iterations, fold_warmup=fold_warmup,
                       record_timeline=record_timeline),
        "folded": {
            "wall_time_s": folded_wall,
            "simulated_time_s": folded.total_time,
            "fold_status": folded.profile.get("fold_status"),
            "iterations_folded": counters.get("iterations_folded", 0),
            "plan_instances": counters.get("plan_instances", 0),
            "events": folded.events,
        },
        "exact": {
            "wall_time_s": exact_wall,
            "simulated_time_s": exact.total_time,
            "events": exact.events,
            "events_per_sec": exact.events / exact_wall,
        },
        "wall_speedup": exact_wall / folded_wall,
        "identical_simulated_time":
            folded.total_time == exact.total_time
            and folded.iteration_times == exact.iteration_times,
        "max_relative_error": max_relative_error,
        # The surfaced accuracy contract: folding promises agreement
        # within the config's fold_tolerance, not bit-identity.  The
        # regression gate asserts this stays true (and additionally
        # ceilings max_relative_error; see check_perf_regression.py).
        "fold_tolerance": folded_cfg.fold_tolerance,
        "within_fold_tolerance":
            max_relative_error <= folded_cfg.fold_tolerance,
    }


def run(quick: bool = False) -> dict:
    cases = [compare_fold(**kwargs)
             for kwargs in (QUICK_CASES if quick else FULL_CASES)]
    headline = cases[0]
    assert headline["folded"]["fold_status"] == "folded", headline
    return {
        "benchmark": "iteration_folding",
        "schema_version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "cases": cases,
        "headline": {
            "scenario": headline["scenario"],
            "num_gpus": headline["params"]["num_gpus"],
            "iterations": headline["params"]["iterations"],
            "fold_warmup": headline["params"]["fold_warmup"],
            "wall_speedup": headline["wall_speedup"],
            "events_per_sec": headline["exact"]["events_per_sec"],
            "identical_simulated_time":
                headline["identical_simulated_time"],
            "max_relative_error": headline["max_relative_error"],
            "fold_tolerance": headline["fold_tolerance"],
            "within_fold_tolerance": headline["within_fold_tolerance"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_fold.json",
                        help="output path (default: ./BENCH_fold.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small scenario for CI smoke runs")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    head = payload["headline"]
    print(f"wrote {out}")
    print(f"  {head['scenario']} @ {head['num_gpus']} GPUs, "
          f"{head['iterations']} iterations (warmup={head['fold_warmup']}): "
          f"{head['wall_speedup']:.2f}x wall speedup, "
          f"{head['events_per_sec']:,.0f} events/s exact, "
          f"max relative error {head['max_relative_error']:.2e} "
          f"({'within' if head['within_fold_tolerance'] else 'OUTSIDE'} "
          f"fold_tolerance {head['fold_tolerance']:.0e})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
