"""Benchmark: regenerate Figure 16 (Hop backup workers under heterogeneity).

Paper claims: across 8 random communication-slowdown scenarios on 8 A100
GPUs (VGG-11, batch 128), one backup worker always helps, with a benefit
that varies significantly per scenario, on both the ring-with-chords and
double-ring graphs.
"""

from conftest import QUICK

from repro.experiments import fig16


def test_fig16_hop_backup_workers(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig16.run(quick=QUICK), rounds=1, iterations=1
    )
    show(result.table())
    speedups = [r.detail["speedup"] for r in result.rows]
    assert all(s >= 1.0 for s in speedups)       # always beneficial
    assert max(s - 1.0 for s in speedups) > 0.05  # sometimes substantial
    assert max(speedups) - min(speedups) > 0.02   # varies across scenarios
