"""Ablation: DDP vs FSDP (ZeRO-3) — the memory/communication trade.

An extension benchmark (not a paper figure): fully-sharded data
parallelism moves 3x the parameter bytes per iteration where DDP's
AllReduce moves 2x, in exchange for sharding parameters, gradients, and
optimizer state across ranks.  The benchmark verifies both halves of the
trade against the simulator and the memory estimator, and validates the
simulated time against the hardware oracle.
"""

from conftest import RUNS

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu, platform_p2
from repro.memory.estimator import estimate_memory
from repro.oracle.oracle import HardwareOracle
from repro.trace.tracer import Tracer
from repro.workloads import get_model

MODEL = "gpt2"
BATCH = 64


def _predict(trace, parallelism):
    config = SimulationConfig.for_platform(platform_p2(),
                                           parallelism=parallelism,
                                           batch_size=BATCH)
    return TrioSim(trace, config, record_timeline=False).run()


def test_ablation_fsdp_vs_ddp(benchmark, show):
    trace = Tracer(get_gpu("A100")).trace(get_model(MODEL), BATCH)
    fsdp = benchmark.pedantic(lambda: _predict(trace, "fsdp"),
                              rounds=1, iterations=1)
    ddp = _predict(trace, "ddp")
    mem_ddp = estimate_memory(trace, parallelism="ddp", num_gpus=4)
    mem_fsdp = estimate_memory(trace, parallelism="fsdp", num_gpus=4)
    oracle = HardwareOracle(platform_p2())
    measured = oracle.measure_fsdp(get_model(MODEL), BATCH, runs=RUNS).total
    err = abs(fsdp.total_time - measured) / measured
    show(
        f"ablation(fsdp) {MODEL} on 4x A100: "
        f"DDP {ddp.total_time * 1e3:.1f} ms @ {mem_ddp.total / 1e9:.1f} GB/GPU | "
        f"FSDP {fsdp.total_time * 1e3:.1f} ms @ {mem_fsdp.total / 1e9:.1f} GB/GPU "
        f"(oracle {measured * 1e3:.1f} ms, err {err * 100:.1f}%)"
    )
    # The trade must hold in both directions.
    assert fsdp.communication_time > ddp.communication_time
    assert mem_fsdp.total < mem_ddp.total
    # And the prediction must track the detailed oracle.
    assert err < 0.25
