"""Ablation: trace-provided operator times vs Li's Model scaling.

DESIGN.md calls out TrioSim's two-mode policy: replay trace times
verbatim when parameters match, scale with the regression model when they
do not.  This ablation quantifies both halves: (a) verbatim replay is
exact by construction, and (b) regression scaling tracks a genuinely
re-measured batch within a few percent, whereas naive proportional
scaling is measurably worse on small operators.
"""

import pytest
from conftest import RUNS

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu, platform_p1
from repro.oracle.oracle import HardwareOracle
from repro.trace.tracer import Tracer
from repro.workloads import get_model

MODEL = "densenet121"  # many small operators: the hard case for scaling


def _setup():
    trace = Tracer(get_gpu("A40")).trace(get_model(MODEL), 128)
    oracle = HardwareOracle(platform_p1())
    measured = oracle.measure_single_gpu(get_model(MODEL), 256, runs=RUNS).total
    return trace, measured


def test_ablation_li_model_vs_proportional_scaling(benchmark, show):
    trace, measured = _setup()

    def li_prediction():
        config = SimulationConfig(parallelism="single", batch_size=256)
        return TrioSim(trace, config, record_timeline=False).run().total_time

    predicted = benchmark.pedantic(li_prediction, rounds=1, iterations=1)
    li_err = abs(predicted - measured) / measured

    # Naive alternative: every operator time scales exactly with batch.
    naive = sum(
        op.duration * (2.0 if op.phase != "optimizer" else 1.0)
        for op in trace.operators
    )
    naive_err = abs(naive - measured) / measured

    show(
        f"ablation(perfmodel) {MODEL}: measured {measured * 1e3:.1f} ms | "
        f"Li's Model {predicted * 1e3:.1f} ms (err {li_err * 100:.2f}%) | "
        f"proportional {naive * 1e3:.1f} ms (err {naive_err * 100:.2f}%)"
    )
    assert li_err < 0.06
    assert li_err < naive_err  # the regression must beat pure proportionality


def test_ablation_verbatim_replay_is_exact(benchmark, show):
    trace, _ = _setup()
    config = SimulationConfig(parallelism="single")  # same batch as trace
    result = benchmark.pedantic(
        lambda: TrioSim(trace, config, record_timeline=False).run(),
        rounds=1, iterations=1,
    )
    assert result.total_time == pytest.approx(trace.total_duration, rel=1e-12)
    show("ablation(perfmodel): verbatim replay exact, as required by §4.4")
