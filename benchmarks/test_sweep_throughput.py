"""Sweep-service throughput: parallel speedup and cache hit-rate.

A 16-point design-space sweep (the ISSUE's acceptance scenario) run three
ways over one ResNet-18 trace:

* **sequential** — the plain per-point ``TrioSim`` loop every figure used
  before the sweep service existed;
* **parallel** — ``SweepRunner`` fanning the points over worker processes;
* **replay** — the same sweep again with a warm on-disk cache.

All three must produce bit-identical ``total_time`` values.  The speedup
assertion only binds on multi-core machines (process fan-out cannot beat a
sequential loop on one core); the cache assertions always bind: the replay
must serve >= 90% of points from disk and dispatch zero engine events.
"""

import os
import time

from repro.core.config import SimulationConfig
from repro.core.simulator import TrioSim
from repro.gpus.specs import get_gpu
from repro.service.runner import SweepRunner
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

#: 16 points: GPU count x link bandwidth x collective scheme.
GRID = [
    SimulationConfig(parallelism="ddp", num_gpus=n, link_bandwidth=bw,
                     collective_scheme=scheme)
    for n in (2, 4, 8, 16)
    for bw in (25e9, 100e9)
    for scheme in ("ring", "tree")
]


def test_sweep_throughput(tmp_path, show):
    trace = Tracer(get_gpu("A100")).trace(get_model("resnet18"), 32)

    start = time.perf_counter()
    sequential = [
        TrioSim(trace, cfg, record_timeline=False).run().total_time
        for cfg in GRID
    ]
    sequential_s = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1)
    runner = SweepRunner(max_workers=workers, cache=tmp_path / "cache")
    start = time.perf_counter()
    outcomes = runner.run(trace, GRID)
    parallel_s = time.perf_counter() - start
    assert [o.unwrap().total_time for o in outcomes] == sequential

    replay_runner = SweepRunner(max_workers=workers,
                                cache=tmp_path / "cache")
    start = time.perf_counter()
    replayed = replay_runner.run(trace, GRID)
    replay_s = time.perf_counter() - start
    assert [o.unwrap().total_time for o in replayed] == sequential
    metrics = replay_runner.last_metrics
    assert metrics.hit_rate >= 0.90
    assert metrics.fresh_events == 0

    speedup = sequential_s / parallel_s if parallel_s > 0 else float("inf")
    replay_x = sequential_s / replay_s if replay_s > 0 else float("inf")
    show(
        f"16-point sweep, {workers} workers "
        f"({os.cpu_count()} cores available)\n"
        f"  sequential loop   {sequential_s * 1e3:8.0f} ms\n"
        f"  parallel sweep    {parallel_s * 1e3:8.0f} ms "
        f"({speedup:.2f}x)\n"
        f"  cached replay     {replay_s * 1e3:8.0f} ms "
        f"({replay_x:.0f}x, hit-rate "
        f"{metrics.hit_rate * 100:.0f}%)\n"
        f"  bit-identical results across all three runs: yes"
    )
    if (os.cpu_count() or 1) > 1 and workers > 1:
        # Fan-out only wins when there are cores to fan onto.
        assert parallel_s < sequential_s
    # A warm cache must beat simulating, regardless of core count.
    assert replay_s < sequential_s
