"""Write the network hot-path benchmark results to ``BENCH_network.json``.

Runs the collective-heavy scenarios from :mod:`network_load` under both
the legacy dense allocator and the incremental allocator and records
events/sec, reallocations, cancellations, and wall time — the perf
baseline future PRs compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py [-o BENCH_network.json]
    PYTHONPATH=src python benchmarks/bench_to_json.py --quick   # CI smoke

Quick mode shrinks every scenario so the whole run stays under a few
seconds; the full run uses the acceptance-scale cases (>= 64 GPUs).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from network_load import compare_modes  # noqa: E402  (path set up above)

#: (scenario, kwargs) pairs per profile.  The headline case is the
#: 128-GPU hierarchical-bucket run; the flat storm bounds the win when
#: traffic is globally coupled and scoping cannot help.
FULL_CASES = [
    ("hierarchical_buckets", {"num_gpus": 128, "buckets": 4, "nbytes": 32e6}),
    ("hierarchical_buckets", {"num_gpus": 64, "buckets": 4, "nbytes": 32e6}),
    ("flat_ring_storm", {"num_gpus": 64, "buckets": 6, "nbytes": 64e6}),
]
QUICK_CASES = [
    ("hierarchical_buckets", {"num_gpus": 64, "buckets": 2, "nbytes": 8e6}),
    ("flat_ring_storm", {"num_gpus": 64, "buckets": 2, "nbytes": 8e6}),
]


def run(quick: bool = False) -> dict:
    cases = [compare_modes(name, **kwargs)
             for name, kwargs in (QUICK_CASES if quick else FULL_CASES)]
    headline = cases[0]
    return {
        "benchmark": "network_hot_path",
        "schema_version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "cases": cases,
        "headline": {
            "scenario": headline["scenario"],
            "num_gpus": headline["incremental"]["num_gpus"],
            "events_per_sec": headline["incremental"]["events_per_sec"],
            "wall_speedup": headline["wall_speedup"],
            "cancellation_reduction": headline["cancellation_reduction"],
            "identical_simulated_time": headline["identical_simulated_time"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_network.json",
                        help="output path (default: ./BENCH_network.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke runs")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick)
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    head = payload["headline"]
    print(f"wrote {out}")
    print(f"  {head['scenario']} @ {head['num_gpus']} GPUs: "
          f"{head['events_per_sec']:,.0f} events/s, "
          f"{head['wall_speedup']:.2f}x wall speedup, "
          f"{head['cancellation_reduction']:,.1f}x fewer cancellations, "
          f"identical simulated time: {head['identical_simulated_time']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
