"""Benchmark: regenerate Figure 13 (comm/compute breakdown on P1).

Paper claim: the communication share under tensor parallelism is higher
than under distributed data parallelism on P1, for every model.
"""

from conftest import QUICK

from repro.experiments import fig13


def test_fig13_communication_computation_ratio(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig13.run(quick=QUICK), rounds=1, iterations=1
    )
    show(result.table())
    tp_rows = [r for r in result.rows if r.label.endswith("/tp")]
    assert tp_rows
    for tp_row in tp_rows:
        ddp_row = result.row(tp_row.label.replace("/tp", "/ddp"))
        assert tp_row.detail["comm_ratio"] > ddp_row.detail["comm_ratio"]
