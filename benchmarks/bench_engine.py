"""Write the exact-path engine benchmark results to ``BENCH_engine.json``.

The exact event-by-event path is what every fold-ineligible run executes
— fault injection, flowlet/adaptive routing, ``--sanitize``/``--verify``,
timeline recording — and what every sweep-service worker spends its time
in.  This benchmark pins the overhauled engine down from two sides:

* **Differential correctness** — the columnar (SoA) scheduler and the
  per-object reference scheduler are run over the same faulted and clean
  64-GPU scenarios and must produce *identical* dispatch digests (the
  same ``(time, seq)`` fold the verifier computes), simulated times, and
  event counts.  A divergence fails the benchmark, not just the gate.

* **Throughput** — best-of-N events/sec on the faulted + adaptive-routing
  scenario, for both schedulers.  ``wall_speedup`` (SoA vs the in-tree
  object reference arm, measured fresh in the same run) is the
  machine-portable ratio CI gates on; ``speedup_vs_pre_overhaul``
  compares against the recorded pre-overhaul baseline (see
  ``pre_overhaul`` in the output) and carries the PR's >= 2x acceptance
  criterion.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [-o BENCH_engine.json]
    PYTHONPATH=src python benchmarks/bench_engine.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --profile out.pstats
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.plan import PlanCache
from repro.core.simulator import TrioSim
from repro.faults.spec import FaultSpec
from repro.gpus.specs import get_gpu
from repro.network.flow import FlowNetwork
from repro.network.routing import get_routing_strategy
from repro.network.topology import build_topology_cached
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_model

#: The headline scenario: a 64-GPU DDP run on a leaf-spine fabric with
#: adaptive routing and a straggler fault — every knob that disables
#: iteration folding, so the run is pure exact path.  Quick mode shrinks
#: the model and fabric so CI stays under ~30s.
FULL = dict(model="resnet50", batch=128, num_gpus=64, iterations=2,
            repeats=3)
QUICK = dict(model="resnet18", batch=32, num_gpus=16, iterations=2,
             repeats=2)

#: Straggler spec for the faulted arm (seeded: bit-identical digests).
FAULTS = {
    "schema_version": 1, "seed": 0,
    "stragglers": [{"gpu": "gpu1", "start": 0.001, "duration": 0.05,
                    "factor": 1.5}],
    "link_faults": [], "failures": [], "checkpoint_interval": None,
    "checkpoint_cost": 0.0, "restore_cost": 0.0, "chaos_kill_at": None,
}

#: The pre-overhaul engine's throughput on the FULL faulted scenario,
#: measured at the commit preceding the exact-path overhaul (object
#: dependency walk, per-event dispatch, per-event hook machinery) with
#: this file's exact methodology — warm plan cache, best-of-3 — on the
#: same machine that produced the committed BENCH_engine.json.  Its
#: simulated time equals the overhauled engine's to the bit.  The
#: ``speedup_vs_pre_overhaul`` headline divides by this; it is only
#: meaningful for full (non ``--quick``) runs on comparable hardware —
#: cross-machine CI gates use ``wall_speedup`` instead.
PRE_OVERHAUL_EVENTS_PER_SEC = 64_897

_MASK = (1 << 64) - 1


class _Digest:
    """The verifier's dispatch-order fold, fed by an engine observer."""

    def __init__(self) -> None:
        self.value = 0

    def __call__(self, time: float, seq: int, event) -> None:
        self.value = ((self.value * 1000003) ^ hash((time, seq))) & _MASK


def _observed_factory(digest: _Digest, num_gpus: int):
    """A network factory that installs *digest* as dispatch observer.

    The observer has to be attached before any event is scheduled; the
    network factory is the only pre-run seam that sees the engine, so
    the differential arms build their (standard) network through it.
    """

    def factory(engine, cfg):
        engine.set_dispatch_observer(digest)
        topo = build_topology_cached("leaf_spine", num_gpus,
                                     cfg.link_bandwidth, cfg.link_latency)
        if cfg.faults is not None and not cfg.faults.is_empty:
            # Fault injection mutates link bandwidths; never share the
            # cached topology instance with other arms.
            topo = topo.copy()
        return FlowNetwork(engine, topo,
                           routing=get_routing_strategy(cfg.routing),
                           routing_seed=cfg.routing_seed)

    return factory


def _config(num_gpus: int, iterations: int, faulted: bool,
            factory=None) -> SimulationConfig:
    return SimulationConfig(
        parallelism="ddp", num_gpus=num_gpus, topology="leaf_spine",
        link_bandwidth=234e9, iterations=iterations, routing="adaptive",
        faults=FaultSpec.from_dict(FAULTS) if faulted else None,
        network_factory=factory)


def _digest_arm(trace, cache: PlanCache, num_gpus: int, iterations: int,
                faulted: bool, scheduler: str) -> Tuple[str, float, int]:
    digest = _Digest()
    sim = TrioSim(trace, _config(num_gpus, iterations, faulted,
                                 _observed_factory(digest, num_gpus)),
                  record_timeline=False, plan_cache=cache,
                  scheduler=scheduler)
    result = sim.run()
    return f"{digest.value:016x}", result.total_time, result.events


def _timed_arm(trace, cache: PlanCache, num_gpus: int, iterations: int,
               scheduler: str, repeats: int) -> Tuple[float, int]:
    """Best-of-*repeats* wall seconds for the faulted scenario."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        sim = TrioSim(trace, _config(num_gpus, iterations, faulted=True),
                      record_timeline=False, plan_cache=cache,
                      scheduler=scheduler)
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        if wall < best:
            best = wall
        events = result.events
    return best, events


def run(quick: bool = False,
        profile_out: Optional[str] = None) -> dict:
    params = QUICK if quick else FULL
    trace = Tracer(get_gpu("A100")).trace(get_model(params["model"]),
                                          params["batch"])
    cache = PlanCache()
    num_gpus, iterations = params["num_gpus"], params["iterations"]

    # Differential: SoA vs object dispatch digests, faulted and clean.
    differential: Dict[str, dict] = {}
    for arm_name, faulted in (("faulted", True), ("clean", False)):
        arms = {
            scheduler: _digest_arm(trace, cache, num_gpus, iterations,
                                   faulted, scheduler)
            for scheduler in ("soa", "object")
        }
        (soa_digest, soa_total, soa_events) = arms["soa"]
        (obj_digest, obj_total, obj_events) = arms["object"]
        assert soa_digest == obj_digest, (
            f"{arm_name}: dispatch digest diverged: "
            f"soa {soa_digest} vs object {obj_digest}")
        assert soa_total == obj_total, (
            f"{arm_name}: simulated time diverged: "
            f"{soa_total!r} vs {obj_total!r}")
        assert soa_events == obj_events, (
            f"{arm_name}: event count diverged: {soa_events} vs {obj_events}")
        differential[arm_name] = {
            "dispatch_digest": soa_digest,
            "simulated_time_s": soa_total,
            "events": soa_events,
            "identical_simulated_time": True,
        }

    # Throughput: best-of-N on the faulted scenario, both schedulers.
    soa_wall, events = _timed_arm(trace, cache, num_gpus, iterations,
                                  "soa", params["repeats"])
    object_wall, _ = _timed_arm(trace, cache, num_gpus, iterations,
                                "object", params["repeats"])
    events_per_sec = events / soa_wall

    if profile_out:
        import cProfile

        profiler = cProfile.Profile()
        sim = TrioSim(trace, _config(num_gpus, iterations, faulted=True),
                      record_timeline=False, plan_cache=cache,
                      scheduler="soa")
        profiler.enable()
        sim.run()
        profiler.disable()
        profiler.dump_stats(profile_out)

    payload = {
        "benchmark": "engine_exact_path",
        "schema_version": 1,
        "quick": quick,
        "python": platform.python_version(),
        "params": dict(model=params["model"], batch=params["batch"],
                       num_gpus=num_gpus, iterations=iterations,
                       topology="leaf_spine", routing="adaptive",
                       link_bandwidth=234e9, repeats=params["repeats"],
                       faults="straggler gpu1 x1.5 (seed 0)"),
        "differential": differential,
        "timing": {
            "soa_wall_s": soa_wall,
            "object_wall_s": object_wall,
            "events": events,
            "events_per_sec": events_per_sec,
            "object_events_per_sec": events / object_wall,
        },
        "headline": {
            "scenario": f"{params['model']}_ddp_faults_adaptive",
            "num_gpus": num_gpus,
            "events": events,
            "events_per_sec": events_per_sec,
            "wall_speedup": object_wall / soa_wall,
            "dispatch_digest": differential["faulted"]["dispatch_digest"],
            "clean_dispatch_digest":
                differential["clean"]["dispatch_digest"],
            "identical_simulated_time": True,
        },
    }
    if not quick:
        payload["pre_overhaul"] = {
            "events_per_sec": PRE_OVERHAUL_EVENTS_PER_SEC,
            "method": "same scenario and machine as this file's timing, "
                      "measured at the commit before the exact-path "
                      "engine overhaul (object dependency walk, "
                      "per-event dispatch)",
        }
        payload["headline"]["speedup_vs_pre_overhaul"] = (
            events_per_sec / PRE_OVERHAUL_EVENTS_PER_SEC)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_engine.json",
                        help="output path (default: ./BENCH_engine.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small scenario for CI smoke runs")
    parser.add_argument("--profile", default=None, metavar="PSTATS",
                        help="also cProfile one exact-path run and dump "
                             "the stats here (CI uploads this artifact)")
    args = parser.parse_args(argv)

    payload = run(quick=args.quick, profile_out=args.profile)
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    head = payload["headline"]
    print(f"wrote {out}")
    line = (f"  {head['scenario']} @ {head['num_gpus']} GPUs: "
            f"{head['events_per_sec']:,.0f} events/s "
            f"({head['wall_speedup']:.2f}x vs object scheduler), "
            f"digest {head['dispatch_digest']}")
    if "speedup_vs_pre_overhaul" in head:
        line += (f", {head['speedup_vs_pre_overhaul']:.2f}x vs "
                 f"pre-overhaul engine")
    print(line)
    if args.profile:
        print(f"  cProfile stats -> {args.profile}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
