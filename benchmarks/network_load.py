"""Collective-heavy network load scenarios for the flow-model benchmarks.

Shared by the Figure-14 benchmark, the incremental-allocator regression
tests, and ``bench_to_json.py``.  Each scenario builds an engine + flow
network + task graph, runs it, and reports the counters the optimization
is measured by: engine event cancellations (heap churn), delivery
reschedules, reallocations, and wall time.

Two shapes are provided:

* ``hierarchical_buckets`` — DDP-style gradient-bucket all-reduces inside
  every node of a multi-node cluster, staggered per node (nodes finish
  backward at slightly different times).  Traffic is node-local and
  mutually disjoint, so scoped reallocation never touches the other
  nodes; the legacy dense allocator reschedules every in-flight flow in
  the whole cluster at every wave boundary of every node.
* ``flat_ring_storm`` — overlapping whole-cluster ring all-reduces over
  the same fabric.  Traffic is globally coupled (one contention
  component), so this bounds the win when scoping cannot help and only
  the cheaper solver and reduced scope bookkeeping remain.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.collectives.ring import ring_all_reduce
from repro.core.taskgraph import TaskGraphSimulator
from repro.engine.engine import Engine
from repro.network.flow import FlowNetwork
from repro.network.topology import gpu_names, multi_node, node_groups

GPUS_PER_NODE = 8
INTRA_BW = 300e9
INTER_BW = 50e9

#: Per-node stagger between backward passes; picked off any round multiple
#: of the bucket gate spacing so node waves do not re-synchronize.
NODE_STAGGER = 3.7e-5
BUCKET_GAP = 2e-4


def _finish(engine: Engine, network: FlowNetwork,
            sim: TaskGraphSimulator, num_gpus: int) -> Dict:
    start = time.perf_counter()
    total = sim.run()
    wall = time.perf_counter() - start
    events = engine.dispatched_events
    return {
        "num_gpus": num_gpus,
        "simulated_time_s": total,
        "wall_time_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "cancellations": engine.total_cancelled,
        "compactions": engine.compactions,
        "reallocations": network.reallocations,
        "reschedules": network.reschedules,
        "fastpath_hits": network.fastpath_hits,
        "allocator_warnings": network.allocator_warnings,
    }


def hierarchical_buckets(num_gpus: int = 128, buckets: int = 4,
                         nbytes: float = 32e6,
                         incremental: bool = True) -> Dict:
    """Staggered node-local gradient-bucket all-reduces on a cluster."""
    if num_gpus % GPUS_PER_NODE:
        raise ValueError(f"num_gpus must be a multiple of {GPUS_PER_NODE}")
    num_nodes = num_gpus // GPUS_PER_NODE
    engine = Engine()
    topology = multi_node(num_nodes, GPUS_PER_NODE,
                          intra_bandwidth=INTRA_BW, inter_bandwidth=INTER_BW)
    network = FlowNetwork(engine, topology, incremental=incremental)
    sim = TaskGraphSimulator(engine, network)
    for node, group in enumerate(node_groups(num_nodes, GPUS_PER_NODE)):
        for bucket in range(buckets):
            gate = sim.add_compute(
                f"n{node}.gate{bucket}", group[0],
                duration=bucket * BUCKET_GAP + node * NODE_STAGGER,
            )
            ring_all_reduce(sim, group, nbytes, deps=[gate],
                            tag=f"n{node}.b{bucket}")
    return _finish(engine, network, sim, num_gpus)


def flat_ring_storm(num_gpus: int = 64, buckets: int = 6,
                    nbytes: float = 64e6,
                    incremental: bool = True) -> Dict:
    """Overlapping whole-cluster ring all-reduces (one contention
    component: the adversarial case for scoped reallocation)."""
    if num_gpus % GPUS_PER_NODE:
        raise ValueError(f"num_gpus must be a multiple of {GPUS_PER_NODE}")
    engine = Engine()
    topology = multi_node(num_gpus // GPUS_PER_NODE, GPUS_PER_NODE,
                          intra_bandwidth=INTRA_BW, inter_bandwidth=INTER_BW)
    network = FlowNetwork(engine, topology, incremental=incremental)
    sim = TaskGraphSimulator(engine, network)
    gpus = gpu_names(num_gpus)
    for bucket in range(buckets):
        gate = sim.add_compute(f"gate{bucket}", gpus[bucket % num_gpus],
                               duration=bucket * BUCKET_GAP)
        ring_all_reduce(sim, gpus, nbytes, deps=[gate], tag=f"b{bucket}")
    return _finish(engine, network, sim, num_gpus)


SCENARIOS = {
    "hierarchical_buckets": hierarchical_buckets,
    "flat_ring_storm": flat_ring_storm,
}


def compare_modes(scenario: str, **kwargs) -> Dict:
    """Run one scenario under the legacy dense allocator and under the
    incremental allocator; report both plus the derived ratios."""
    build = SCENARIOS[scenario]
    legacy = build(incremental=False, **kwargs)
    incremental = build(incremental=True, **kwargs)
    return {
        "scenario": scenario,
        "params": kwargs,
        "legacy": legacy,
        "incremental": incremental,
        "identical_simulated_time": (
            legacy["simulated_time_s"] == incremental["simulated_time_s"]
        ),
        "cancellation_reduction": (
            legacy["cancellations"] / max(incremental["cancellations"], 1)
        ),
        "wall_speedup": (
            legacy["wall_time_s"] / incremental["wall_time_s"]
            if incremental["wall_time_s"] > 0 else float("inf")
        ),
    }
