"""Benchmark: regenerate Figure 7 (standard data parallelism on P1).

Paper claim: 7.39% average error for threaded ``DataParallel`` on 2x A40,
the least accurate data-parallel variant because of unmodelled GIL costs.
"""

from conftest import QUICK, RUNS

from repro.experiments import fig07


def test_fig07_standard_data_parallelism(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig07.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    # Shape: a systematic error of several percent (paper: 7.39%), and
    # TrioSim *underpredicts* (it does not model the GIL penalty).
    assert 0.02 < result.mean_abs_error() < 0.15
    underpredictions = sum(1 for r in result.rows if r.error < 0)
    assert underpredictions >= len(result.rows) * 0.8
