"""Benchmark: regenerate Figure 9 (tensor parallelism on P1 and P2).

Paper claim: 4.54% (P1) and 11.24% (P2) average error; the 4-way shards of
P2 are smaller, so the linear model's blindness to efficiency effects
costs more there.
"""

from conftest import QUICK, RUNS

from repro.experiments import fig09


def test_fig09_tensor_parallelism(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig09.run(quick=QUICK, runs=RUNS), rounds=1, iterations=1
    )
    show(result.table())
    p1 = result.mean_abs_error("/P1")
    p2 = result.mean_abs_error("/P2")
    assert p1 < 0.10
    assert p2 < 0.15
    # Shape: the 4-GPU platform is harder to predict than the 2-GPU one.
    assert p2 > p1
